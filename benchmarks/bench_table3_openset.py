"""Table 3 — open-set evaluation: models trained on the lab dataset,
tested on the home-network dataset (drifted software versions).

Reproduction targets: accuracy stays high but below the lab CV numbers;
YouTube TCP the strongest scenario; device type >= user platform within
each provider; Amazon the hardest provider.
"""

from conftest import emit

from repro.pipeline import SCENARIOS, evaluate_scenario_on, scenario_data
from repro.reporting.paper_values import TABLE3_OPEN_SET
from repro.util import format_table


def _evaluate(trained_bank, openset_dataset):
    results = {}
    for provider, transport in SCENARIOS:
        data = scenario_data(openset_dataset, provider, transport)
        if not data.samples:
            continue
        scenario = trained_bank.scenario(provider, transport)
        results[(provider, transport)] = evaluate_scenario_on(scenario,
                                                              data)
    return results


def test_table3_open_set_accuracy(benchmark, trained_bank,
                                  openset_dataset):
    results = benchmark.pedantic(
        lambda: _evaluate(trained_bank, openset_dataset),
        iterations=1, rounds=1)
    rows = []
    for (provider, transport), result in results.items():
        for objective in ("user_platform", "device_type",
                          "software_agent"):
            paper = TABLE3_OPEN_SET.get((provider, transport, objective))
            rows.append((
                f"{provider.short} ({transport.value})", objective,
                f"{paper:.3f}" if paper else "-",
                f"{result.accuracy[objective]:.3f}",
            ))
    emit("table3_openset", format_table(
        ("scenario", "objective", "paper", "measured"), rows,
        title="Table 3 — open-set evaluation"))

    from repro.fingerprints import Provider, Transport
    yt_tcp = results[(Provider.YOUTUBE, Transport.TCP)]
    assert yt_tcp.accuracy["user_platform"] > 0.80
    for result in results.values():
        # Every scenario keeps a usable open-set accuracy.
        assert result.accuracy["user_platform"] > 0.6
        # Device type stays strong; it is never far below the composite
        # objective (the paper has it strictly above; at bench scale a
        # single drifted platform can dent the standalone device model).
        assert result.accuracy["device_type"] > 0.8
        assert result.accuracy["device_type"] >= \
            result.accuracy["user_platform"] - 0.12
