"""Fig 6(a) — random forest hyperparameter grid for YouTube QUIC:
number of attributes (selected by information gain) x maximum tree
depth. The paper's best cell is 34 attributes at depth 20, 96.4%.
"""

import numpy as np
from conftest import BENCH_FOLDS, BENCH_TREES, emit

from repro.features import rank_attributes
from repro.fingerprints import Provider, Transport
from repro.ml import RandomForestClassifier, cross_val_score
from repro.pipeline import scenario_data
from repro.reporting.paper_values import BEST_RF_CONFIG
from repro.util import format_table

ATTRIBUTE_COUNTS = (5, 10, 20, 34, 47)
MAX_DEPTHS = (5, 10, 20, 30)


def _grid(lab_dataset):
    data = scenario_data(lab_dataset, Provider.YOUTUBE, Transport.QUIC)
    ranked = rank_attributes(data.samples, data.platform_labels,
                             Transport.QUIC)
    by_score = sorted(ranked, key=lambda imp: imp.score, reverse=True)
    results = {}
    for n_attrs in ATTRIBUTE_COUNTS:
        names = [imp.spec.name for imp in by_score[:n_attrs]]
        _, X = data.encode(attribute_names=names)
        for depth in MAX_DEPTHS:
            scores = cross_val_score(
                lambda: RandomForestClassifier(
                    n_estimators=BENCH_TREES, max_depth=depth,
                    max_features=min(34, X.shape[1]), random_state=0),
                X, data.platform_labels, n_splits=BENCH_FOLDS)
            results[(n_attrs, depth)] = float(np.mean(scores))
    return results


def test_fig06a_rf_hyperparameter_grid(benchmark, lab_dataset):
    results = benchmark.pedantic(lambda: _grid(lab_dataset),
                                 iterations=1, rounds=1)
    rows = []
    for n_attrs in ATTRIBUTE_COUNTS:
        rows.append([f"{n_attrs} attrs"] + [
            f"{results[(n_attrs, depth)]:.3f}" for depth in MAX_DEPTHS
        ])
    emit("fig06a_rf_tuning", format_table(
        ["#attributes \\ depth"] + [str(d) for d in MAX_DEPTHS],
        rows,
        title=(
            "Fig 6(a) — RF tuning, YouTube QUIC "
            f"(paper best: {BEST_RF_CONFIG['n_attributes']} attrs, "
            f"depth {BEST_RF_CONFIG['max_depth']}, "
            f"{BEST_RF_CONFIG['accuracy']:.3f})"
        )))

    best = max(results.values())
    # Paper shape: accuracy saturates above ~30 attributes and depth
    # >= 10; the best cell is >= 0.93 even at bench scale, and shallow
    # depth-5 forests trail the saturated region.
    assert best >= 0.90
    assert results[(34, 20)] >= best - 0.03
    deep_mean = np.mean([results[(34, d)] for d in (20, 30)])
    assert results[(5, 5)] <= deep_mean + 0.01
    assert results[(34, 5)] <= best
