"""§4.3.1 — model family comparison on YouTube QUIC user platforms:
random forest vs MLP vs KNN (paper: 96.4% / 65.1% / 69.1%).

The reproduction target is the *ordering* (RF decisively first) and the
existence of a large gap to the two non-tree families on this mixed
categorical-code feature space.
"""

import numpy as np
from conftest import BENCH_FOLDS, BENCH_TREES, emit

from repro.fingerprints import Provider, Transport
from repro.ml import (
    KNeighborsClassifier,
    MLPClassifier,
    RandomForestClassifier,
    cross_val_score,
)
from repro.pipeline import scenario_data
from repro.reporting.paper_values import MODEL_COMPARISON_YT_QUIC
from repro.util import format_table


def _compare(lab_dataset):
    data = scenario_data(lab_dataset, Provider.YOUTUBE, Transport.QUIC)
    _, X = data.encode()
    y = data.platform_labels
    factories = {
        "random_forest": lambda: RandomForestClassifier(
            n_estimators=BENCH_TREES, max_depth=20, max_features=34,
            random_state=0),
        "mlp": lambda: MLPClassifier(hidden_layer_sizes=(64, 32),
                                     max_iter=40, random_state=0),
        "knn": lambda: KNeighborsClassifier(n_neighbors=5),
    }
    return {
        name: float(np.mean(cross_val_score(factory, X, y,
                                            n_splits=BENCH_FOLDS)))
        for name, factory in factories.items()
    }


def test_sec431_model_comparison(benchmark, lab_dataset):
    results = benchmark.pedantic(lambda: _compare(lab_dataset),
                                 iterations=1, rounds=1)
    rows = [(name, MODEL_COMPARISON_YT_QUIC[name], results[name])
            for name in ("random_forest", "mlp", "knn")]
    emit("sec431_model_comparison", format_table(
        ("model", "paper", "measured"), rows,
        title="§4.3.1 — model comparison, YouTube QUIC user platform"))

    # Reproduction target: the ordering — random forest first, as in the
    # paper. The paper's MLP/KNN scored far lower (65.1/69.1%); ours are
    # stronger because the synthetic lab set has less in-class variance
    # than a real capture and our MLP standardizes its inputs (see
    # EXPERIMENTS.md for the recorded deviation). RF stays on top.
    assert results["random_forest"] >= results["mlp"] - 0.005
    assert results["random_forest"] >= results["knn"] - 0.005
    assert results["random_forest"] > 0.90
