"""Table 4 — median classification confidence of correct vs incorrect
open-set predictions.

Reproduction target: a wide gap — correct predictions concentrate at
high confidence (paper: > 88% median), incorrect ones at low confidence
(mostly < 70%) — which is what makes the 80% rejection threshold of the
deployment pipeline effective.
"""

import numpy as np
from conftest import emit

from repro.pipeline import SCENARIOS, evaluate_scenario_on, scenario_data
from repro.reporting.paper_values import TABLE4_CONFIDENCE
from repro.util import format_table


def _evaluate(trained_bank, openset_dataset):
    results = {}
    for provider, transport in SCENARIOS:
        data = scenario_data(openset_dataset, provider, transport)
        if not data.samples:
            continue
        scenario = trained_bank.scenario(provider, transport)
        results[(provider, transport)] = evaluate_scenario_on(scenario,
                                                              data)
    return results


def test_table4_confidence_split(benchmark, trained_bank,
                                 openset_dataset):
    results = benchmark.pedantic(
        lambda: _evaluate(trained_bank, openset_dataset),
        iterations=1, rounds=1)
    rows = []
    gaps = []
    for (provider, transport), result in results.items():
        for objective in ("user_platform", "device_type",
                          "software_agent"):
            paper = TABLE4_CONFIDENCE.get(
                (provider, transport, objective))
            summary = result.confidence[objective]
            rows.append((
                f"{provider.short} ({transport.value})", objective,
                f"{paper[0]:.3f}/{paper[1]:.3f}" if paper else "-",
                f"{summary.median_correct:.3f}/"
                f"{summary.median_incorrect:.3f}",
            ))
            if summary.n_incorrect >= 5:
                gaps.append(summary.median_correct
                            - summary.median_incorrect)
    emit("table4_confidence", format_table(
        ("scenario", "objective", "paper corr/incorr",
         "measured corr/incorr"), rows,
        title="Table 4 — median confidence, correct vs incorrect"))

    # Correct predictions must be systematically more confident.
    assert gaps, "no scenario produced enough incorrect predictions"
    assert float(np.mean(gaps)) > 0.1
    for result in results.values():
        summary = result.confidence["user_platform"]
        assert summary.median_correct > 0.7
