"""Ablations of our feature-encoding design choices (DESIGN.md §6).

1. **List-field positional encoding vs dropping list fields**: Table 2
   encodes cipher_suites/extension lists as order-preserving positional
   vectors (high cost). Removing the ten list attributes measures what
   that design choice buys.
2. **GREASE folding on vs off**: the extractor folds RFC 8701 GREASE
   randomness into one symbol before encoding. Without folding, every
   Chromium flow carries fresh random code points that inflate codebooks
   and inject noise into exactly the highest-importance attributes.
"""

import numpy as np
from conftest import BENCH_FOLDS, BENCH_TREES, emit

from repro.features import ATTRIBUTES, AttributeKind, extract_flow_attributes
from repro.features.encode import AttributeEncoder
from repro.fingerprints import Provider, Transport
from repro.ml import RandomForestClassifier, cross_val_score
from repro.pipeline import scenario_data
from repro.util import format_table


def _cv(X, labels):
    scores = cross_val_score(
        lambda: RandomForestClassifier(
            n_estimators=BENCH_TREES, max_depth=20,
            max_features=min(34, X.shape[1]), random_state=0),
        X, labels, n_splits=BENCH_FOLDS)
    return float(np.mean(scores))


def _evaluate(lab_dataset):
    data = scenario_data(lab_dataset, Provider.YOUTUBE, Transport.QUIC)
    subset = lab_dataset.subset(provider=Provider.YOUTUBE,
                                transport=Transport.QUIC)
    raw_samples = []
    for flow in subset:
        values, _ = extract_flow_attributes(flow.packets,
                                            fold_grease=False)
        raw_samples.append(values)

    results = {}
    # Full encoder (the deployed configuration).
    _, X_full = data.encode()
    results["full (positional lists, GREASE folded)"] = _cv(
        X_full, data.platform_labels)

    # Drop every list attribute.
    non_list = [spec.name for spec in ATTRIBUTES
                if spec.kind is not AttributeKind.LIST
                and Transport.QUIC in spec.transports]
    _, X_nolist = data.encode(attribute_names=non_list)
    results["no list attributes"] = _cv(X_nolist, data.platform_labels)

    # GREASE left raw.
    encoder = AttributeEncoder(Transport.QUIC)
    X_raw = encoder.fit_transform(raw_samples)
    results["GREASE not folded"] = _cv(X_raw, data.platform_labels)
    return results


def test_ablation_encoding_choices(benchmark, lab_dataset):
    results = benchmark.pedantic(lambda: _evaluate(lab_dataset),
                                 iterations=1, rounds=1)
    rows = [(name, f"{acc:.3f}") for name, acc in results.items()]
    emit("ablation_encoding", format_table(
        ("encoder variant", "YT QUIC platform accuracy"), rows,
        title="Ablation — feature encoding design choices"))

    full = results["full (positional lists, GREASE folded)"]
    # Dropping list attributes costs accuracy: the order-preserving
    # vectors carry real platform signal.
    assert results["no list attributes"] <= full + 0.005
    # Unfolded GREASE must not *help* (it is pure per-session noise);
    # the forest mostly routes around it, so the gap is small.
    assert results["GREASE not folded"] <= full + 0.01
