#!/usr/bin/env python
"""Compare a regenerated BENCH_*.json against the committed baseline.

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline baseline/BENCH_ingest.json --fresh BENCH_ingest.json

Entries are matched by ``(mode, workers)``. Two kinds of comparison,
each with a 20% tolerance:

* **pkt/s** — only meaningful on the same machine context (equal CPU
  count, same Python minor version, same smoke flag). Mismatched
  contexts are skipped loudly, never silently passed.
* **speedup** — dimensionless, so single-worker ratios (raw vs eager,
  bulk vs raw) transfer across machines and are always enforced.
  Multi-worker scaling ratios are only enforced when *both* sides
  measured on >=4 cores; a 1-core box produces inverted scaling that
  would be meaningless as a floor.

A baseline entry may additionally carry a ``floor`` field: an
*absolute* speedup floor the fresh run must reach regardless of the
committed value (used by BENCH_obs.json to pin the <=3% observability
overhead budget as ``floor: 0.97`` — a budget, not a ratchet, so a
lucky committed 0.999x never tightens it). When present, the absolute
floor replaces the relative 80%-of-committed speedup comparison.

Exit status 1 on any regression beyond tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys

TOLERANCE = 0.8  # fresh must reach 80% of the committed value


def _minor(python: str) -> str:
    return ".".join(python.split(".")[:2])


def _context_comparable(baseline: dict, fresh: dict) -> list[str]:
    reasons = []
    if baseline.get("cpu_count") != fresh.get("cpu_count"):
        reasons.append(
            f"cpu_count {baseline.get('cpu_count')} vs "
            f"{fresh.get('cpu_count')}")
    if _minor(baseline.get("python", "")) != \
            _minor(fresh.get("python", "")):
        reasons.append(f"python {baseline.get('python')} vs "
                       f"{fresh.get('python')}")
    if bool(baseline.get("smoke")) != bool(fresh.get("smoke")):
        reasons.append(f"smoke {baseline.get('smoke')} vs "
                       f"{fresh.get('smoke')}")
    return reasons


def check(baseline: dict, fresh: dict) -> int:
    name = baseline.get("bench", "?")
    failures = 0
    context_reasons = _context_comparable(baseline, fresh)
    if context_reasons:
        print(f"[{name}] SKIP pkt/s comparisons — machine context "
              f"differs ({'; '.join(context_reasons)})")
    fresh_by_key = {(e["mode"], e["workers"]): e
                    for e in fresh.get("entries", [])}
    scaling_ok = (baseline.get("cpu_count", 0) >= 4
                  and fresh.get("cpu_count", 0) >= 4)
    for entry in baseline.get("entries", []):
        key = (entry["mode"], entry["workers"])
        other = fresh_by_key.get(key)
        tag = f"[{name}] {entry['mode']}/w{entry['workers']}"
        if other is None:
            print(f"{tag} FAIL — entry missing from fresh results")
            failures += 1
            continue
        if not context_reasons:
            floor = entry["pkt_per_s"] * TOLERANCE
            if other["pkt_per_s"] < floor:
                print(f"{tag} FAIL — pkt/s {other['pkt_per_s']:,} < "
                      f"80% of committed {entry['pkt_per_s']:,}")
                failures += 1
            else:
                print(f"{tag} ok — pkt/s {other['pkt_per_s']:,} vs "
                      f"committed {entry['pkt_per_s']:,}")
        floor_abs = entry.get("floor")
        if floor_abs is not None:
            if other["speedup"] < floor_abs:
                print(f"{tag} FAIL — speedup {other['speedup']}x "
                      f"below the absolute floor {floor_abs}x")
                failures += 1
            else:
                print(f"{tag} ok — speedup {other['speedup']}x >= "
                      f"absolute floor {floor_abs}x")
            continue
        if entry["workers"] > 1 and not scaling_ok:
            print(f"{tag} SKIP speedup — scaling ratio needs >=4 "
                  f"cores on both sides (baseline "
                  f"{baseline.get('cpu_count')}, fresh "
                  f"{fresh.get('cpu_count')})")
            continue
        floor = entry["speedup"] * TOLERANCE
        if other["speedup"] < floor:
            print(f"{tag} FAIL — speedup {other['speedup']}x < 80% of "
                  f"committed {entry['speedup']}x")
            failures += 1
        else:
            print(f"{tag} ok — speedup {other['speedup']}x vs "
                  f"committed {entry['speedup']}x")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly regenerated BENCH_*.json")
    args = parser.parse_args()
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    failures = check(baseline, fresh)
    if failures:
        print(f"{failures} benchmark regression(s) beyond the 20% "
              f"tolerance", file=sys.stderr)
        return 1
    print("benchmark trajectory holds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
