"""Fingerprint explorer: craft the connection-establishment packets of
chosen platforms, write them to a pcap file, read them back, and show
the handshake fields that identify each platform (§3.3).

Run:  python examples/fingerprint_explorer.py
"""

import tempfile
from pathlib import Path

from repro.features import extract_flow_attributes
from repro.fingerprints import Provider, Transport, UserPlatform, get_profile
from repro.net import read_pcap, write_pcap
from repro.trafficgen import FlowBuildRequest, FlowFactory, pick_sni
from repro.util import SeededRNG, format_table

SHOWCASE = (
    ("windows_chrome", Provider.YOUTUBE, Transport.QUIC),
    ("windows_firefox", Provider.YOUTUBE, Transport.QUIC),
    ("macOS_safari", Provider.YOUTUBE, Transport.QUIC),
    ("windows_nativeApp", Provider.NETFLIX, Transport.TCP),
    ("ps5_nativeApp", Provider.NETFLIX, Transport.TCP),
    ("android_nativeApp", Provider.DISNEY, Transport.TCP),
)

FIELDS = ("ttl", "init_packet_size", "handshake_length",
          "tcp_window_size", "grease_quic_bit", "user_agent",
          "record_size_limit", "supported_versions")


def main() -> None:
    rng = SeededRNG(7)
    factory = FlowFactory(rng)
    flows = []
    for label, provider, transport in SHOWCASE:
        platform = UserPlatform.from_label(label)
        flows.append(factory.build(FlowBuildRequest(
            platform_label=label, provider=provider, transport=transport,
            profile=get_profile(platform, provider),
            sni=pick_sni(provider, "content", rng))))

    # Round-trip through an actual pcap file, as the paper's lab
    # captures did through Wireshark.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "showcase.pcap"
        n = write_pcap(path, (p for f in flows for p in f.packets))
        packets = read_pcap(path)
        print(f"Wrote and re-read {n} packets via {path.name} "
              f"({path.stat().st_size} bytes)\n")

    rows = []
    for flow in flows:
        values, record = extract_flow_attributes(flow.packets)
        row = [f"{flow.platform_label} ({flow.transport.value})"]
        for field in FIELDS:
            value = values.get(field)
            if value is None:
                row.append("-")
            elif isinstance(value, tuple):
                row.append(",".join(hex(v) if isinstance(v, int) else
                                    str(v) for v in value))
            else:
                row.append(str(value)[:26])
        rows.append(row)
    print(format_table(["platform"] + list(FIELDS), rows,
                       title="Handshake fields across user platforms "
                             "(cf. §3.3)"))
    assert len(packets) == n


if __name__ == "__main__":
    main()
