"""Cost-constrained deployment (§4.3.3 / Table 5): an ISP whose packet
processors cannot afford the high-cost list attributes trains on a
reduced attribute set and trades ~3% accuracy for a leaner pipeline.

Run:  python examples/constrained_isp.py
"""

import numpy as np

from repro.features import (
    Cost,
    attribute,
    rank_attributes,
    select_attributes_by_policy,
)
from repro.fingerprints import Provider, Transport
from repro.ml import RandomForestClassifier, cross_val_score
from repro.pipeline import scenario_data
from repro.trafficgen import generate_lab_dataset
from repro.util import format_table


def main() -> None:
    print("Generating dataset + ranking attribute importance...")
    lab = generate_lab_dataset(seed=11, scale=0.25)
    data = scenario_data(lab, Provider.YOUTUBE, Transport.QUIC)
    importances = rank_attributes(data.samples, data.platform_labels,
                                  Transport.QUIC)

    def evaluate(names):
        _, X = data.encode(attribute_names=names)
        scores = cross_val_score(
            lambda: RandomForestClassifier(
                n_estimators=12, max_depth=20,
                max_features=min(34, X.shape[1]), random_state=0),
            X, data.platform_labels, n_splits=4)
        return float(np.mean(scores)), X.shape[1]

    policies = {
        "full attribute set": None,
        "drop low-importance high-cost": ("high",),
        "drop low-importance high+medium-cost": ("high", "medium"),
        "drop all low-importance": ("high", "medium", "low"),
    }
    rows = []
    for name, exclude in policies.items():
        if exclude is None:
            kept = None
            n_attrs = len({imp.spec.name for imp in importances})
        else:
            kept = select_attributes_by_policy(importances, exclude)
            n_attrs = len(kept)
        acc, n_cols = evaluate(kept)
        rows.append((name, n_attrs, n_cols, f"{acc:.3f}"))
    print(format_table(
        ("policy", "#attributes", "#encoded columns", "CV accuracy"),
        rows, title="Table 5 scenario — YouTube QUIC user platform"))

    # Show which high-cost attributes a constrained ISP still keeps.
    kept_high_cost = [
        imp.spec.name for imp in importances
        if imp.spec.cost is Cost.HIGH and imp.tier != "low"
    ]
    print("\nHigh-cost attributes that earn their keep:")
    for name in kept_high_cost:
        print(f"  {attribute(name).label:4s} {name}")


if __name__ == "__main__":
    main()
