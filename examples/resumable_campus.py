"""Resumable campus replay (§5.1 operability): checkpoint a running
replay, kill it mid-capture, restore in a "fresh process", hot-reload a
retrained bank (the §5.3 driftwatch handoff), and finish — then prove
the resumed run is byte-identical to one that never died.

Run:  python examples/resumable_campus.py
"""

import tempfile
from pathlib import Path

from repro.ml import RandomForestClassifier
from repro.pipeline import (
    ClassifierBank,
    ConceptDriftMonitor,
    RealtimePipeline,
    ingest_pcap,
    load_ingest_position,
)
from repro.net import PcapWriter
from repro.telemetry import save_rollup
from repro.trafficgen import generate_lab_dataset


class SimulatedCrash(Exception):
    pass


class DiesAfter:
    """Wrap a pipeline so the process 'dies' mid-replay."""

    def __init__(self, pipeline, frames_left):
        self._pipeline = pipeline
        self._frames_left = frames_left

    def __getattr__(self, name):
        return getattr(self._pipeline, name)

    def process_raw(self, raw):
        if self._frames_left <= 0:
            raise SimulatedCrash()
        self._frames_left -= 1
        self._pipeline.process_raw(raw)


def main() -> None:
    work = Path(tempfile.mkdtemp(prefix="resumable-campus-"))
    print("Training the deployment bank (and a 'retrained' one)...")
    bank = ClassifierBank.train(
        generate_lab_dataset(seed=5, scale=0.08),
        model_factory=lambda: RandomForestClassifier(
            n_estimators=8, max_depth=14, random_state=0))
    retrained = ClassifierBank.train(
        generate_lab_dataset(seed=23, scale=0.08),
        model_factory=lambda: RandomForestClassifier(
            n_estimators=8, max_depth=14, random_state=4))

    print("Writing a campus capture to replay...")
    lab = generate_lab_dataset(seed=61, scale=0.06)
    frames = sorted(((p.to_bytes(), p.timestamp)
                     for flow in list(lab)[::3][:80]
                     for p in flow.packets), key=lambda pair: pair[1])
    pcap = work / "campus.pcap"
    with PcapWriter(pcap) as writer:
        for data, timestamp in frames:
            writer.write_bytes(data, timestamp)
    span = frames[-1][1] - frames[0][1]
    schedule = dict(idle_timeout=span / 3,
                    checkpoint_interval=span / 8)

    # --- the oracle: a run nothing ever interrupts -----------------------
    oracle = RealtimePipeline(bank, batch_size=16, retention="both",
                              monitor=ConceptDriftMonitor())
    ingest_pcap(oracle, pcap, checkpoint_dir=work / "oracle-ck",
                **schedule)
    oracle.reload_bank(retrained)  # same boundary as the resumed run
    oracle.flush()

    # --- the deployment: dies mid-replay ---------------------------------
    ck = work / "ck"
    victim = RealtimePipeline(bank, batch_size=16, retention="both",
                              monitor=ConceptDriftMonitor())
    try:
        ingest_pcap(DiesAfter(victim, len(frames) * 2 // 3), pcap,
                    checkpoint_dir=ck, **schedule)
    except SimulatedCrash:
        position = load_ingest_position(ck)
        print(f"Crash after frame {len(frames) * 2 // 3}; last "
              f"checkpoint covers {position.consumed} records "
              f"({position.frames} processed, "
              f"{position.skipped} skipped).")
    del victim  # the process is gone; only ck/ survives

    # --- restart: restore, resume the replay, hot-swap the bank ----------
    print("Restoring from the checkpoint and resuming the replay...")
    resumed = RealtimePipeline.restore(ck, bank)
    print(f"  restored {resumed.live_flows} live flows, "
          f"{resumed.counters.video_flows} video flows so far, "
          f"driftwatch state intact: {resumed.monitor is not None}")
    ingest_pcap(resumed, pcap, checkpoint_dir=ck, resume_dir=ck,
                **schedule)
    print("Hot-reloading the retrained bank (no flows dropped)...")
    resumed.reload_bank(retrained)
    resumed.flush()

    # --- proof: byte-identical to the uninterrupted run ------------------
    assert resumed.counters == oracle.counters
    assert list(resumed.store) == list(oracle.store)
    save_rollup(resumed.rollup, work / "rollup-resumed")
    save_rollup(oracle.rollup, work / "rollup-oracle")
    resumed_bytes = (work / "rollup-resumed" / "rollup.json").read_bytes()
    oracle_bytes = (work / "rollup-oracle" / "rollup.json").read_bytes()
    assert resumed_bytes == oracle_bytes
    print(f"\nResumed run == uninterrupted run: "
          f"{resumed.counters.video_flows} video flows, "
          f"{len(list(resumed.store))} records, rollup snapshots "
          f"byte-identical ({len(resumed_bytes)} bytes).")
    print(f"Artifacts under {work}")


if __name__ == "__main__":
    main()
