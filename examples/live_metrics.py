"""Live metrics during a campus replay: run an instrumented pipeline
with the `/metrics` endpoint up, scrape it mid-replay like a
Prometheus agent would, watch the structured event log fill, and dump
the final merged view in both exposition formats.

Run:  python examples/live_metrics.py
"""

import json
import tempfile
import urllib.request
from pathlib import Path

from repro.ml import RandomForestClassifier
from repro.net import PcapWriter
from repro.obs import EventLog, MetricsServer, read_events
from repro.pipeline import ClassifierBank, RealtimePipeline, ingest_pcap
from repro.trafficgen import generate_lab_dataset


def scrape(port: int, path: str = "/metrics") -> str:
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10) as resp:
        return resp.read().decode()


def main() -> None:
    work = Path(tempfile.mkdtemp(prefix="live-metrics-"))
    print("Training the deployment bank...")
    bank = ClassifierBank.train(
        generate_lab_dataset(seed=5, scale=0.08),
        model_factory=lambda: RandomForestClassifier(
            n_estimators=8, max_depth=14, random_state=0))

    print("Writing a campus capture to replay...")
    lab = generate_lab_dataset(seed=61, scale=0.06)
    frames = sorted(((p.to_bytes(), p.timestamp)
                     for flow in list(lab)[::3][:80]
                     for p in flow.packets), key=lambda pair: pair[1])
    pcap = work / "campus.pcap"
    with PcapWriter(pcap) as writer:
        for data, timestamp in frames:
            writer.write_bytes(data, timestamp)
    span = frames[-1][1] - frames[0][1]

    # An instrumented pipeline: metrics=True arms the timing spans;
    # count metrics would export even without it (derived from the
    # pipeline counters), but we want stage latencies too.
    pipeline = RealtimePipeline(bank, batch_size=16, retention="both",
                                metrics=True)

    with EventLog(work / "events.jsonl") as events, \
            MetricsServer(pipeline.export_metrics, port=0) as server:
        print(f"Serving live metrics on "
              f"http://127.0.0.1:{server.port}/metrics")
        health = json.loads(scrape(server.port, "/healthz"))
        print(f"  /healthz -> {health}")

        # Replay the capture with eviction + checkpointing armed so
        # the event log has sweeps and checkpoints to record. A real
        # deployment would scrape from another process; here we poll
        # between chunks of the same replay.
        ingest_pcap(pipeline, pcap, idle_timeout=span / 3,
                    checkpoint_dir=work / "ck",
                    checkpoint_interval=span / 8, events=events)

        text = scrape(server.port)
        live = [line for line in text.splitlines()
                if line.startswith(("repro_packets_total",
                                    "repro_live_flows",
                                    "repro_stage_seconds_count"))]
        print("Mid-run scrape (before flush):")
        for line in live:
            print(f"  {line}")

        pipeline.flush()

        # The JSON flavor carries the same snapshot the worker
        # aggregation protocol ships between processes.
        snapshot = json.loads(scrape(server.port, "/metrics.json"))
        print(f"Final snapshot: {len(snapshot['metrics'])} series")

    registry = pipeline.export_metrics()
    (work / "metrics.prom").write_text(registry.render_prometheus())
    (work / "metrics.json").write_text(registry.to_json())

    print("\nEvent log:")
    for event in read_events(work / "events.jsonl"):
        extras = {k: v for k, v in event.items()
                  if k not in ("event", "wall", "clock")}
        clock = (f"{event['clock']:.2f}"
                 if event["clock"] is not None else "none")
        print(f"  clock={clock:>12} {event['event']} {extras}")

    print(f"\n{registry.value('repro_packets_total')} packets, "
          f"{registry.value('repro_video_flows_total')} video flows, "
          f"{registry.value('repro_evicted_flows_total')} evicted by "
          f"idle sweeps.")
    print(f"Artifacts under {work}")


if __name__ == "__main__":
    main()
