"""Campus deployment (§5): run a simulated day of campus video traffic
through the real-time pipeline and print the ISP-facing insights —
watch time per platform, bandwidth demand, peak hours, and the share of
low-confidence (excluded) sessions.

Run:  python examples/campus_deployment.py
"""

from repro.analysis import (
    bandwidth_by_device,
    excluded_share,
    hourly_usage_gb,
    mobile_share,
    peak_hours,
    watch_time_by_device,
)
from repro.fingerprints import DeviceClass, Provider
from repro.ml import RandomForestClassifier
from repro.pipeline import ClassifierBank, RealtimePipeline
from repro.trafficgen import CampusConfig, CampusWorkload, generate_lab_dataset
from repro.util import format_histogram, format_table


def main() -> None:
    print("Training deployment models on the lab dataset...")
    lab = generate_lab_dataset(seed=5, scale=0.25)
    bank = ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=15, max_depth=20, max_features=34,
            random_state=0))

    print("Simulating one campus day (800 sessions) through the "
          "pipeline...")
    pipeline = RealtimePipeline(bank)
    workload = CampusWorkload(CampusConfig(days=1, sessions_per_day=800,
                                           seed=42))
    pipeline.process_flows(workload.flows())
    store = pipeline.store
    counters = pipeline.counters
    print(f"  {counters.video_flows} video flows classified "
          f"({counters.classified} confident, {counters.partial} "
          f"partial, {counters.unknown} unknown)")
    print(f"  low-confidence sessions excluded from insights: "
          f"{excluded_share(store):.0%} (paper: ~20%)\n")

    # Fig 7 — watch time by device type.
    by_device = watch_time_by_device(store)
    rows = []
    for provider in Provider:
        per_device = by_device.get(provider, {})
        rows.append((provider.short, f"{sum(per_device.values()):.0f}",
                     f"{mobile_share(store, provider):.0%}"))
    print(format_table(("provider", "watch h/day", "mobile share"), rows,
                       title="Watch time (cf. Fig 7)"))

    # Fig 9 — bandwidth demand medians.
    print()
    bw = bandwidth_by_device(store)
    rows = []
    for provider in Provider:
        stats = bw.get(provider, {})
        for device in ("windows", "macOS", "androidTV"):
            if device in stats:
                rows.append((provider.short, device,
                             f"{stats[device]['median']:.1f}"))
    print(format_table(("provider", "device", "median Mbps"), rows,
                       title="Bandwidth demand (cf. Fig 9)"))

    # Fig 11 — hourly usage for YouTube PCs.
    print()
    hourly = hourly_usage_gb(store)
    yt_pc = hourly.get(Provider.YOUTUBE, {}).get(DeviceClass.PC)
    if yt_pc:
        labels = [f"{h:02d}:00" for h in range(24)]
        print("YouTube PC data usage by hour (cf. Fig 11):")
        print(format_histogram(labels, [round(v, 2) for v in yt_pc],
                               width=40, unit=" GB"))
        print(f"peak hours: {peak_hours(yt_pc)}")


if __name__ == "__main__":
    main()
