"""A live tap end to end: a capture process appends to a pcap while a
`repro serve` daemon tails it, answers §5.2 rollup queries over HTTP,
checkpoints on a wall-clock cadence, and drains gracefully — then a
second daemon resumes from the final checkpoint and picks up the feed.

This is the service-plane counterpart to `resumable_campus.py`: same
pipeline, same checkpoint contract, but frames arrive from a growing
file instead of a finished replay, and every answer is an HTTP
response instead of a printed table.

Run:  python examples/live_tap.py
"""

import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.ml import RandomForestClassifier
from repro.net import PcapWriter
from repro.pipeline import ClassifierBank, save_bank
from repro.service import build_daemon, open_source
from repro.trafficgen import generate_lab_dataset


def get(port: int, path: str) -> bytes:
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10) as resp:
        return resp.read()


def capture_writer(path: Path, chunks, done: threading.Event) -> None:
    """Stand-in for `tcpdump -w`: grow the capture chunk by chunk."""
    with PcapWriter(path) as writer:
        for chunk in chunks:
            for data, timestamp in chunk:
                writer.write_bytes(data, timestamp)
            writer.flush()
            time.sleep(0.15)
    done.set()


def main() -> None:
    work = Path(tempfile.mkdtemp(prefix="live-tap-"))
    print("Training the deployment bank...")
    bank = ClassifierBank.train(
        generate_lab_dataset(seed=5, scale=0.08),
        model_factory=lambda: RandomForestClassifier(
            n_estimators=8, max_depth=14, random_state=0))
    bank_dir = work / "bank"
    save_bank(bank, bank_dir)

    print("Synthesizing the traffic the tap will see...")
    lab = generate_lab_dataset(seed=61, scale=0.06)
    frames = sorted(((p.to_bytes(), p.timestamp)
                     for flow in list(lab)[::3][:80]
                     for p in flow.packets), key=lambda pair: pair[1])
    step = max(1, len(frames) // 8)
    chunks = [frames[i:i + step] for i in range(0, len(frames), step)]

    live = work / "live.pcap"
    done = threading.Event()
    writer = threading.Thread(target=capture_writer,
                              args=(live, chunks, done), daemon=True)

    print("Starting the serve daemon on the (still empty) tap...")
    daemon = build_daemon(bank_dir, open_source(f"tail:{live}"),
                          num_workers=2, retention="rollup",
                          checkpoint_dir=work / "ck",
                          checkpoint_interval=3600.0)
    with daemon:
        port = daemon.server.port
        print(f"  API on http://127.0.0.1:{port}")
        print(f"  /readyz -> {get(port, '/readyz').decode()}")
        writer.start()
        while not done.is_set() or \
                json.loads(get(port, "/api/status"))["consumed"] < \
                len(frames):
            status = json.loads(get(port, "/api/status"))
            print(f"  tailing: {status['consumed']:4d} records "
                  f"consumed, {status['frames']:4d} ingested")
            time.sleep(0.3)

        # End of the observation window: drain in-flight flows so the
        # rollup covers everything, then query like an operator would.
        urllib.request.urlopen(
            urllib.request.Request(
                f"http://127.0.0.1:{port}/api/flush", data=b"",
                method="POST"), timeout=10)
        rollup = json.loads(get(port, "/api/rollup?query=watch_hours"))
        print(f"  total watch hours: "
              f"{rollup['total_watch_hours']:.2f} across "
              f"{rollup['total_flows']} video flows")
        print("  §5.2 report over the live cube:")
        for line in get(port, "/api/report?limit=3") \
                .decode().splitlines()[:8]:
            print(f"    {line}")

    # The context-manager exit drained gracefully: final checkpoint.
    position = json.loads((work / "ck" / "service.json").read_text())
    print(f"Final checkpoint: {position['consumed']} records consumed, "
          f"{position['frames']} frames")

    print("Restarting from the checkpoint (a crash-restart would look "
          "identical)...")
    daemon = build_daemon(bank_dir, open_source(f"tail:{live}"),
                          num_workers=2, retention="rollup",
                          checkpoint_dir=work / "ck",
                          checkpoint_interval=3600.0, resume=True)
    with daemon:
        status = json.loads(get(daemon.server.port, "/api/status"))
        print(f"  resumed at {status['consumed']} records consumed, "
              f"{status['frames']} frames — the stream continues "
              f"from here")
    print(f"Artifacts under {work}")


if __name__ == "__main__":
    main()
