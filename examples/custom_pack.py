"""Custom fingerprint pack: author an overlay pack, validate it, train
a bank from it, and classify flows — the full data-driven fingerprint
loop without touching a line of library code.

The overlay extends the committed builtin pack and makes two kinds of
edit the merge layer supports:

* a *retune*: Windows machines in this deployment run a tuned TCP
  stack (larger window, higher window scale), expressed as a new spec
  plus a field-level profile override for ``windows_chrome``;
* a *relabel*: the same profile gains a TLS-library lineage label.

Everything else is inherited from the base pack untouched.

Run:  python examples/custom_pack.py
"""

import json
import tempfile
from pathlib import Path

from repro.fingerprints import Provider, Transport, UserPlatform
from repro.fingerprints.packs import (
    PACK_FORMAT_VERSION,
    builtin_pack,
    load_pack,
    payload_digest,
    set_active_pack,
)
from repro.ml import RandomForestClassifier
from repro.pipeline import ClassifierBank, RealtimePipeline
from repro.trafficgen import generate_lab_dataset

OVERLAY_NAME = "campus-tuned"


def build_overlay_document() -> dict:
    """An overlay pack document. The payload holds only the deltas;
    ``extends`` pulls everything else from the committed builtin."""
    payload = {
        "tcp_stacks": {
            "windows_tuned": {
                "ttl": 128,
                "window_size": 131072,
                "mss": 1460,
                "window_scale": 10,
                "sack_permitted": True,
                "timestamps": False,
                "ecn_setup": False,
                "option_order": ["mss", "nop", "window_scale", "nop",
                                 "nop", "sack_permitted"],
            },
        },
        "profiles": [
            # Field-level override: only the named fields change; the
            # ClientHello and QUIC references stay inherited.
            {"platform": "windows_chrome",
             "tcp_stack": "windows_tuned",
             "tls_library": "boringssl"},
        ],
    }
    return {
        "format_version": PACK_FORMAT_VERSION,
        "name": OVERLAY_NAME,
        "version": "demo",
        "description": "Builtin fingerprints with a tuned Windows "
                       "TCP stack for this campus.",
        "extends": "builtin-2023q3",
        "payload": payload,
        # The digest covers the overlay's own payload; the *effective*
        # digest (post-merge) is computed by the loader.
        "payload_sha256": payload_digest(payload),
    }


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{OVERLAY_NAME}.json"
        path.write_text(json.dumps(build_overlay_document(),
                                   sort_keys=True, indent=1) + "\n",
                        encoding="utf-8")

        # Loading IS validation: envelope digest, schema, spec
        # references, flow-count consistency — any problem raises
        # ConfigError naming the offending path. (The CLI equivalent:
        # `repro packs validate campus-tuned.json`.)
        pack = load_pack(path)
        base = builtin_pack()
        print(f"Loaded {pack.name}@{pack.version} "
              f"(digest {pack.digest[:12]}, extends {base.name})")

        windows_chrome = UserPlatform.from_label("windows_chrome")
        before = base.get_profile(windows_chrome, Provider.YOUTUBE)
        after = pack.get_profile(windows_chrome, Provider.YOUTUBE)
        print(f"windows_chrome window_size: "
              f"{before.tcp_stack.window_size} -> "
              f"{after.tcp_stack.window_size}, window_scale: "
              f"{before.tcp_stack.window_scale} -> "
              f"{after.tcp_stack.window_scale}")
        print(f"windows_chrome tls_library: "
              f"{base.tls_library(windows_chrome, Provider.YOUTUBE)} "
              f"-> {pack.tls_library(windows_chrome, Provider.YOUTUBE)}")
        print(f"inherited cells: {len(pack.all_pairs())} "
              f"(base has {len(base.all_pairs())})")

        # Activate the pack and run the paper's loop against it: the
        # lab dataset is synthesized from the pack's fingerprints and
        # the trained bank is stamped with the pack's identity.
        set_active_pack(pack)
        try:
            lab = generate_lab_dataset(seed=11, scale=0.05)
            bank = ClassifierBank.train(
                lab,
                model_factory=lambda: RandomForestClassifier(
                    n_estimators=6, max_depth=12, random_state=0))
            print(f"\nTrained bank stamped with pack: {bank.pack_info}")

            pipeline = RealtimePipeline(bank)
            hits = total = 0
            for flow in list(lab.subset(transport=Transport.TCP))[:40]:
                record = pipeline.process_flow(flow)
                if record is None or \
                        record.prediction.status != "classified":
                    continue
                total += 1
                hits += record.prediction.platform == flow.platform_label
            print(f"Classified {total} lab flows under the custom "
                  f"pack; {hits} matched their ground-truth platform.")
        finally:
            set_active_pack(None)


if __name__ == "__main__":
    main()
