"""Concept drift and retraining (§5.3): the paper notes accuracy will
decay over long deployments as platforms update ("concept drift") and
defers mitigation to established techniques. This example runs that
loop: calibrate a drift monitor on deployment-time confidence, stream
flows from progressively newer software versions, detect the drift
without any ground truth, retrain on fresh captures, and persist the
updated bank to disk.

Run:  python examples/drift_retraining.py
"""

import tempfile
from pathlib import Path

from repro.fingerprints import Provider, Transport
from repro.ml import RandomForestClassifier
from repro.pipeline import (
    ClassifierBank,
    ConceptDriftMonitor,
    load_bank,
    save_bank,
)
from repro.pipeline.evaluate import scenario_data
from repro.trafficgen import generate_lab_dataset, generate_openset_dataset


def _model_factory():
    return RandomForestClassifier(n_estimators=12, max_depth=20,
                                  max_features=34, random_state=0)


def _stream(bank, dataset, monitor):
    """Classify a dataset's YouTube QUIC flows, feeding the monitor."""
    data = scenario_data(dataset, Provider.YOUTUBE, Transport.QUIC)
    scenario = bank.scenario(Provider.YOUTUBE, Transport.QUIC)
    predictions = scenario.classify_rows(
        scenario.encoder.transform(data.samples))
    for prediction in predictions:
        monitor.observe(Provider.YOUTUBE, Transport.QUIC, prediction)
    return predictions


def main() -> None:
    print("Training on the lab capture...")
    lab = generate_lab_dataset(seed=3, scale=0.2)
    bank = ClassifierBank.train(lab, model_factory=_model_factory)

    monitor = ConceptDriftMonitor(confidence_drop_threshold=0.12,
                                  min_observations=60)
    data = scenario_data(lab, Provider.YOUTUBE, Transport.QUIC)
    scenario = bank.scenario(Provider.YOUTUBE, Transport.QUIC)
    reference = scenario.classify_rows(
        scenario.encoder.transform(data.samples))
    monitor.calibrate(Provider.YOUTUBE, Transport.QUIC, reference)
    print(f"  calibrated: reference confidence "
          f"{monitor.report(Provider.YOUTUBE, Transport.QUIC).reference_confidence:.2f}")

    print("\nMonth 1: traffic from mildly updated software...")
    mild = generate_openset_dataset(seed=100, flows_per_pair=10,
                                    drift_strength=0.05)
    _stream(bank, mild, monitor)
    report = monitor.report(Provider.YOUTUBE, Transport.QUIC)
    print(f"  rolling confidence {report.rolling_confidence:.2f} "
          f"(drop {report.confidence_drop:+.2f}) -> "
          f"{'DRIFT' if report.drifting else 'healthy'}")

    print("\nMonth 6: heavily updated software fleet...")
    heavy = generate_openset_dataset(seed=200, flows_per_pair=10,
                                     drift_strength=1.5)
    _stream(bank, heavy, monitor)
    report = monitor.report(Provider.YOUTUBE, Transport.QUIC)
    print(f"  rolling confidence {report.rolling_confidence:.2f} "
          f"(drop {report.confidence_drop:+.2f}, "
          f"Page-Hinkley alarm={report.page_hinkley_alarm}) -> "
          f"{'DRIFT' if report.drifting else 'healthy'}")

    if report.drifting:
        print("\nRetraining on fresh captures from the updated fleet...")
        # Same drifted fleet (seed=200), new traffic (flow_seed).
        fresh = generate_openset_dataset(seed=200, flows_per_pair=25,
                                         drift_strength=1.5,
                                         flow_seed=999)
        bank = ClassifierBank.train(fresh, model_factory=_model_factory)
        monitor.reset(Provider.YOUTUBE, Transport.QUIC)
        predictions = _stream(bank, heavy, monitor)
        confident = sum(1 for p in predictions if p.is_classified)
        print(f"  after retraining: {confident}/{len(predictions)} "
              "flows classified confidently again")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "deployed-bank"
        save_bank(bank, path)
        restored = load_bank(path)
        n_files = len(list(path.iterdir()))
        print(f"\nPersisted retrained bank to {path.name}/ "
              f"({n_files} files) and reloaded "
              f"{len(restored.scenarios)} scenarios.")


if __name__ == "__main__":
    main()
