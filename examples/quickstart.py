"""Quickstart: synthesize a lab dataset, train the classifier bank, and
identify the user platform of a single video flow from its handshake.

Run:  python examples/quickstart.py
"""

from repro.fingerprints import Provider, Transport, UserPlatform, get_profile
from repro.ml import RandomForestClassifier
from repro.pipeline import ClassifierBank, RealtimePipeline
from repro.trafficgen import FlowBuildRequest, FlowFactory, generate_lab_dataset
from repro.util import SeededRNG


def main() -> None:
    # 1. Synthesize a (scaled-down) Table 1 lab dataset: real packets —
    #    TCP SYNs, TLS ClientHellos, AEAD-protected QUIC Initials.
    print("Generating lab dataset (20% of Table 1 scale)...")
    dataset = generate_lab_dataset(seed=1, scale=0.2)
    print(f"  {len(dataset)} labeled video flows across "
          f"{len(dataset.composition())} (platform, provider) cells")

    # 2. Train the classifier bank: three random forests (user platform,
    #    device type, software agent) per (provider, transport) scenario.
    print("Training classifier bank...")
    bank = ClassifierBank.train(
        dataset,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=15, max_depth=20, max_features=34,
            random_state=0))

    # 3. Craft one fresh Netflix flow from an iPhone's native app and
    #    classify it from nothing but its first packets.
    factory = FlowFactory(SeededRNG(2024))
    platform = UserPlatform.from_label("iOS_nativeApp")
    flow = factory.build(FlowBuildRequest(
        platform_label=platform.label,
        provider=Provider.NETFLIX,
        transport=Transport.TCP,
        profile=get_profile(platform, Provider.NETFLIX),
        sni="ipv4-c012-ixp-syd1.1.oca.nflxvideo.net",
        duration=1800.0,
        bytes_down=450_000_000,
    ))
    print(f"Built flow: {flow.key} (SNI {flow.sni})")

    pipeline = RealtimePipeline(bank)
    record = pipeline.process_flow(flow)
    prediction = record.prediction
    print("\nClassification result")
    print(f"  status     : {prediction.status}")
    print(f"  platform   : {prediction.platform} "
          f"(confidence {prediction.confidence:.2f})")
    print(f"  device     : {prediction.device} "
          f"({prediction.device_confidence:.2f})")
    print(f"  agent      : {prediction.agent} "
          f"({prediction.agent_confidence:.2f})")
    print(f"  truth      : {flow.platform_label}")
    print(f"  telemetry  : {record.duration / 60:.0f} min, "
          f"{record.mean_mbps:.1f} Mbps mean downstream")


if __name__ == "__main__":
    main()
