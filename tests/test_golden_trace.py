"""Golden-trace regression tripwire.

``tests/golden/golden.pcap`` is a committed, seeded campus capture;
``tests/golden/expected.json`` pins the counters, every per-flow
prediction (with exact confidences), the record order, and the rollup
snapshot digests a bank trained with the pinned parameters must
produce on it. This suite replays the committed bytes through
eager/raw ingest x serial/sharded/parallel runtimes and fails on *any*
drift — the cheapest tier-1 guard for every future fast-path change.

If a change moves these bytes **intentionally**, regenerate with::

    PYTHONPATH=src python tests/golden/make_golden_trace.py

and commit the updated fixture with the change (the generator is
seeded, so regeneration is reproducible).
"""

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.pipeline import (
    ParallelShardedPipeline,
    RealtimePipeline,
    ShardedPipeline,
    ingest_pcap,
    save_bank,
)
from repro.telemetry import save_rollup

from golden.make_golden_trace import record_rows, train_bank

GOLDEN = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def expected():
    return json.loads((GOLDEN / "expected.json").read_text())


@pytest.fixture(scope="module")
def bank():
    return train_bank()


@pytest.fixture(scope="module")
def bank_dir(bank, tmp_path_factory):
    path = tmp_path_factory.mktemp("golden-bank") / "bank"
    save_bank(bank, path)
    return path


def _rollup_digest(cube, tmp_path, tag) -> str:
    target = tmp_path / f"rollup-{tag}"
    save_rollup(cube, target)
    return hashlib.sha256(
        (target / "rollup.json").read_bytes()).hexdigest()


class TestGoldenTrace:
    @pytest.mark.parametrize("mode", ("raw", "eager", "bulk"))
    def test_serial_replay_matches_pinned_bytes(self, bank, expected,
                                                tmp_path, mode):
        pipeline = RealtimePipeline(bank, batch_size=8,
                                    retention="both")
        result = ingest_pcap(pipeline, GOLDEN / "golden.pcap",
                             mode=mode)
        pipeline.flush()
        assert result.frames == expected["ingest"]["frames"]
        assert result.skipped == expected["ingest"]["skipped"]
        assert asdict(pipeline.counters) == expected["counters"]
        assert record_rows(pipeline.store) == expected["records"]
        assert _rollup_digest(pipeline.rollup, tmp_path, mode) == \
            expected["rollup_sha256_serial"]

    @pytest.mark.parametrize("mode", ("raw", "eager", "bulk"))
    def test_sharded_replay_matches_pinned_bytes(self, bank, expected,
                                                 tmp_path, mode):
        pipeline = ShardedPipeline(bank, num_shards=3, batch_size=8,
                                   retention="both")
        ingest_pcap(pipeline, GOLDEN / "golden.pcap", mode=mode)
        pipeline.flush()
        assert asdict(pipeline.counters) == expected["counters"]
        # Record *order* is shard-major (pinned via the merged rollup
        # digest + the serial order above); the multiset must still
        # match the serial records exactly.
        assert sorted(map(tuple, record_rows(pipeline.store))) == \
            sorted(map(tuple, expected["records"]))
        assert _rollup_digest(pipeline.rollup, tmp_path, mode) == \
            expected["rollup_sha256_sharded3"]

    def test_parallel_replay_matches_pinned_bytes(self, bank_dir,
                                                  expected, tmp_path):
        with ParallelShardedPipeline(bank_dir, num_workers=3,
                                     batch_size=8,
                                     retention="both") as pipeline:
            ingest_pcap(pipeline, GOLDEN / "golden.pcap")
            pipeline.flush()
            assert asdict(pipeline.counters) == expected["counters"]
            assert sorted(map(tuple, record_rows(pipeline.telemetry))) \
                == sorted(map(tuple, expected["records"]))
            # The multiprocess runtime must land on the same merged
            # rollup bytes as the serial 3-shard dispatcher.
            assert _rollup_digest(pipeline.rollup, tmp_path, "par") == \
                expected["rollup_sha256_sharded3"]

    def test_parallel_shm_bulk_matches_pinned_bytes(self, bank_dir,
                                                    expected, tmp_path):
        """The fully optimized path — vectorized bulk decode over the
        shared-memory ring transport — must land on the same pinned
        bytes as every other mode x runtime combination."""
        with ParallelShardedPipeline(bank_dir, num_workers=3,
                                     batch_size=8, retention="both",
                                     transport="shm") as pipeline:
            ingest_pcap(pipeline, GOLDEN / "golden.pcap", mode="bulk")
            pipeline.flush()
            assert asdict(pipeline.counters) == expected["counters"]
            assert sorted(map(tuple, record_rows(pipeline.telemetry))) \
                == sorted(map(tuple, expected["records"]))
            assert _rollup_digest(pipeline.rollup, tmp_path, "shm") == \
                expected["rollup_sha256_sharded3"]

    @pytest.mark.parametrize("workers", (1, 4))
    def test_worker_count_equivalence_under_builtin_pack(
            self, bank_dir, expected, workers):
        """The committed builtin fingerprint pack reproduces the pinned
        golden trace at any worker count — the CI gate for the pack
        refactor: dissolving the hardcoded library into pack files
        moved zero bytes, serial or parallel."""
        from repro.fingerprints.packs import BUILTIN_PACK_NAME, active_pack
        assert active_pack().name == BUILTIN_PACK_NAME
        with ParallelShardedPipeline(bank_dir, num_workers=workers,
                                     batch_size=8,
                                     retention="both") as pipeline:
            ingest_pcap(pipeline, GOLDEN / "golden.pcap")
            pipeline.flush()
            assert asdict(pipeline.counters) == expected["counters"]
            assert sorted(map(tuple, record_rows(pipeline.telemetry))) \
                == sorted(map(tuple, expected["records"]))

    def test_checkpointed_replay_matches_pinned_bytes(self, bank,
                                                      expected,
                                                      tmp_path):
        """Checkpointing mid-replay and resuming must not move the
        golden bytes either: the additive state (counters, records,
        predictions) is checkpoint-schedule-invariant."""
        victim = RealtimePipeline(bank, batch_size=8)
        ingest_pcap(victim, GOLDEN / "golden.pcap",
                    checkpoint_dir=tmp_path / "ck",
                    checkpoint_interval=20.0)
        resumed = RealtimePipeline.restore(tmp_path / "ck", bank)
        ingest_pcap(resumed, GOLDEN / "golden.pcap",
                    checkpoint_dir=tmp_path / "ck",
                    resume_dir=tmp_path / "ck",
                    checkpoint_interval=20.0)
        resumed.flush()
        assert asdict(resumed.counters) == expected["counters"]
        assert record_rows(resumed.store) == expected["records"]

    def test_parallel_metrics_match_serial_on_golden_trace(
            self, bank, bank_dir, expected, tmp_path):
        """The observability plane's core equivalence: count metrics
        exported by the instrumented multiprocess runtime (merged
        across workers) must be *byte-identical* to a serial run's on
        the pinned trace — and both must agree with the pinned
        counters. Timing series are excluded (wall time is not
        deterministic); everything additive must be."""
        serial = RealtimePipeline(bank, batch_size=8, retention="both",
                                  metrics=True)
        ingest_pcap(serial, GOLDEN / "golden.pcap")
        serial.flush()
        with ParallelShardedPipeline(bank_dir, num_workers=3,
                                     batch_size=8, retention="both",
                                     transport="shm",
                                     metrics=True) as par:
            ingest_pcap(par, GOLDEN / "golden.pcap", mode="bulk")
            par.flush()
            par_metrics = par.export_metrics()
        serial_metrics = serial.export_metrics()

        count_names = ("repro_packets_total", "repro_flows_total",
                       "repro_video_flows_total",
                       "repro_non_video_flows_total",
                       "repro_classifications_total",
                       "repro_parse_failures_total",
                       "repro_incomplete_flows_total",
                       "repro_evicted_flows_total")

        def count_lines(registry):
            return [line for line in
                    registry.render_prometheus().splitlines()
                    if not line.startswith("#")
                    and line.split("{")[0].split(" ")[0] in count_names]

        serial_lines = count_lines(serial_metrics)
        assert count_lines(par_metrics) == serial_lines
        # Both views agree with the pinned golden counters.
        assert serial_metrics.value("repro_packets_total") == \
            expected["counters"]["packets"]
        assert serial_metrics.value("repro_video_flows_total") == \
            expected["counters"]["video_flows"]
        assert serial_metrics.value(
            "repro_classifications_total",
            {"status": "classified"}) == \
            expected["counters"]["classified"]

    def test_fixture_files_are_committed(self):
        assert (GOLDEN / "golden.pcap").stat().st_size > 10_000
        expected = json.loads((GOLDEN / "expected.json").read_text())
        assert expected["counters"]["video_flows"] > 0
        assert len(expected["records"]) == \
            expected["counters"]["video_flows"]
