"""Tests for the command-line interface (invoked in-process)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    return root


@pytest.fixture(scope="module")
def trained_bank_dir(workspace):
    """A small trained bank, independent of test ordering."""
    bank_dir = workspace / "rollup-bank"
    assert main(["train", "--out", str(bank_dir),
                 "--scale", "0.03", "--trees", "4", "--seed", "4"]) == 0
    return bank_dir


class TestCliWorkflow:
    def test_export_then_train_then_classify_then_campus(self, workspace,
                                                         capsys):
        dataset_dir = workspace / "dataset"
        bank_dir = workspace / "bank"

        assert main(["export-dataset", "--out", str(dataset_dir),
                     "--scale", "0.03", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "flows.pcap" in out
        assert (dataset_dir / "flows.pcap").exists()

        assert main(["train", "--out", str(bank_dir),
                     "--dataset", str(dataset_dir),
                     "--trees", "5", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "Trained 5 scenarios" in out

        assert main(["classify", "--bank", str(bank_dir),
                     "--pcap", str(dataset_dir / "flows.pcap"),
                     "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "Classified" in out
        assert "video flows" in out

        assert main(["campus", "--bank", str(bank_dir),
                     "--sessions", "40", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Campus insight summary" in out
        assert "YT" in out
        assert "distinct sessions" in out

    def test_campus_rollup_retention_then_report(self, workspace,
                                                 trained_bank_dir,
                                                 capsys):
        rollup_dir = workspace / "rollup"
        capsys.readouterr()  # drop fixture training output
        assert main(["campus", "--bank", str(trained_bank_dir),
                     "--sessions", "40", "--seed", "3",
                     "--retention", "rollup",
                     "--save-rollup", str(rollup_dir)]) == 0
        out = capsys.readouterr().out
        assert "Campus insight summary" in out
        assert "Saved rollup snapshot" in out
        assert (rollup_dir / "rollup.json").exists()
        assert (rollup_dir / "rollup.npz").exists()

        assert main(["report", "--rollup", str(rollup_dir)]) == 0
        out = capsys.readouterr().out
        assert "Rollup snapshot:" in out
        assert "engagement per provider" in out
        assert "per-device detail" in out

    def test_campus_rollup_and_raw_reports_agree(self, trained_bank_dir,
                                                 capsys):
        """retention=rollup answers the summary from the cube alone;
        the headline table must match the raw-store run."""
        capsys.readouterr()  # drop fixture training output

        def summary(retention):
            assert main(["campus", "--bank", str(trained_bank_dir),
                         "--sessions", "40", "--seed", "3",
                         "--retention", retention]) == 0
            out = capsys.readouterr().out
            return out[out.index("Campus insight summary"):]

        raw = summary("raw")
        rollup = summary("rollup")
        # Watch hours and session counts are exact across retention
        # modes; median Mbps is sketch-backed (rank-bounded, and on
        # small cells an observed value rather than an interpolated
        # percentile — whole-Mbps divergence is possible). Compare
        # only the provider and watch-hour columns.
        for line_raw, line_rollup in zip(raw.splitlines(),
                                         rollup.splitlines()):
            assert line_raw.split("|")[:3] == line_rollup.split("|")[:3]

    def test_save_rollup_requires_rollup_retention(self, workspace,
                                                   capsys):
        assert main(["campus", "--bank", str(workspace / "bank"),
                     "--sessions", "5",
                     "--save-rollup", str(workspace / "r")]) == 2
        assert "--save-rollup requires" in capsys.readouterr().err

    def test_classify_raw_and_eager_ingest_agree(self, workspace,
                                                 trained_bank_dir,
                                                 capsys):
        dataset_dir = workspace / "ingest-dataset"
        assert main(["export-dataset", "--out", str(dataset_dir),
                     "--scale", "0.03", "--seed", "4"]) == 0
        capsys.readouterr()
        assert main(["classify", "--bank", str(trained_bank_dir),
                     "--pcap", str(dataset_dir / "flows.pcap"),
                     "--ingest", "raw"]) == 0
        raw_out = capsys.readouterr().out
        assert main(["classify", "--bank", str(trained_bank_dir),
                     "--pcap", str(dataset_dir / "flows.pcap"),
                     "--ingest", "eager"]) == 0
        eager_out = capsys.readouterr().out
        assert raw_out == eager_out
        assert "Classified" in raw_out

    def test_campus_replays_pcap_through_packet_path(self, workspace,
                                                     trained_bank_dir,
                                                     capsys):
        dataset_dir = workspace / "replay-dataset"
        assert main(["export-dataset", "--out", str(dataset_dir),
                     "--scale", "0.03", "--seed", "4"]) == 0
        capsys.readouterr()
        assert main(["campus", "--bank", str(trained_bank_dir),
                     "--pcap", str(dataset_dir / "flows.pcap")]) == 0
        out = capsys.readouterr().out
        assert "Campus insight summary" in out
        assert "video flows" in out

    def test_classify_workers_matches_in_process(self, workspace,
                                                 trained_bank_dir,
                                                 capsys):
        """--workers N (multiprocess) must print exactly what the
        in-process runtimes print on the same capture — composed with
        --ingest, --batch-size, and --idle-timeout."""
        dataset_dir = workspace / "workers-dataset"
        assert main(["export-dataset", "--out", str(dataset_dir),
                     "--scale", "0.03", "--seed", "4"]) == 0
        capsys.readouterr()
        pcap = str(dataset_dir / "flows.pcap")
        base = ["classify", "--bank", str(trained_bank_dir),
                "--pcap", pcap, "--batch-size", "8",
                "--idle-timeout", "3600"]
        assert main(base + ["--shards", "2"]) == 0
        sharded_out = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        workers_out = capsys.readouterr().out
        assert workers_out == sharded_out
        assert main(base + ["--workers", "2", "--ingest", "eager"]) == 0
        assert capsys.readouterr().out == sharded_out

    def test_campus_workers_runs_synthetic_workload(self, workspace,
                                                    trained_bank_dir,
                                                    capsys):
        args = ["campus", "--bank", str(trained_bank_dir),
                "--sessions", "30", "--seed", "3"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_workers_and_shards_are_exclusive(self, workspace,
                                              trained_bank_dir, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campus", "--bank", str(trained_bank_dir),
                  "--sessions", "5", "--workers", "2", "--shards", "2"])
        # Usage errors exit 2, like every other CLI validation failure.
        assert excinfo.value.code == 2
        assert "pick one" in capsys.readouterr().err

    def test_train_synthesizes_when_no_dataset(self, workspace, capsys):
        bank_dir = workspace / "bank2"
        assert main(["train", "--out", str(bank_dir),
                     "--scale", "0.03", "--trees", "4"]) == 0
        out = capsys.readouterr().out
        assert "Synthesizing lab dataset" in out
        assert (bank_dir / "manifest.json").exists()

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_bank_fails_cleanly(self, workspace):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["campus", "--bank", str(workspace / "nope")])
