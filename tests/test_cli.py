"""Tests for the command-line interface (invoked in-process)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    return root


class TestCliWorkflow:
    def test_export_then_train_then_classify_then_campus(self, workspace,
                                                         capsys):
        dataset_dir = workspace / "dataset"
        bank_dir = workspace / "bank"

        assert main(["export-dataset", "--out", str(dataset_dir),
                     "--scale", "0.03", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "flows.pcap" in out
        assert (dataset_dir / "flows.pcap").exists()

        assert main(["train", "--out", str(bank_dir),
                     "--dataset", str(dataset_dir),
                     "--trees", "5", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "Trained 5 scenarios" in out

        assert main(["classify", "--bank", str(bank_dir),
                     "--pcap", str(dataset_dir / "flows.pcap"),
                     "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "Classified" in out
        assert "video flows" in out

        assert main(["campus", "--bank", str(bank_dir),
                     "--sessions", "40", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Campus insight summary" in out
        assert "YT" in out

    def test_train_synthesizes_when_no_dataset(self, workspace, capsys):
        bank_dir = workspace / "bank2"
        assert main(["train", "--out", str(bank_dir),
                     "--scale", "0.03", "--trees", "4"]) == 0
        out = capsys.readouterr().out
        assert "Synthesizing lab dataset" in out
        assert (bank_dir / "manifest.json").exists()

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_bank_fails_cleanly(self, workspace):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["campus", "--bank", str(workspace / "nope")])
