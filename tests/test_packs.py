"""Fingerprint pack suite: envelope corruption, semantic validation,
regenerator byte-stability, override/merge, the registry, and the
pack ↔ bank compatibility contract.

The corruption matrix mirrors ``test_persist_roundtrip.py``: a damaged,
truncated, or version-bumped pack must raise ConfigError — never an
arbitrary exception, never a half-loaded pack. Byte-stability pins the
committed pack files to the seeded regenerator, so a payload edit that
bypasses ``write_builtin_packs`` fails loudly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.fingerprints import Provider, UserPlatform
from repro.fingerprints.packs import (
    BUILTIN_PACK_NAME,
    PACK_FORMAT_VERSION,
    PackRegistry,
    TLS_LIBRARIES,
    active_pack,
    builtin_data_dir,
    builtin_pack,
    load_pack,
    merge_payload,
    payload_digest,
    set_active_pack,
)
from repro.fingerprints.packs.builtin import write_builtin_packs
from repro.ml import RandomForestClassifier
from repro.pipeline import (
    ClassifierBank,
    RealtimePipeline,
    load_bank,
    save_bank,
)
from repro.trafficgen import generate_lab_dataset

DATA_DIR = builtin_data_dir()
BUILTIN_PATH = DATA_DIR / f"{BUILTIN_PACK_NAME}.json"
TLS_LIB_PATH = DATA_DIR / "tls-lib-2023q3.json"


@pytest.fixture(autouse=True)
def _restore_active_pack():
    yield
    set_active_pack(None)


@pytest.fixture()
def document() -> dict:
    return json.loads(BUILTIN_PATH.read_text(encoding="utf-8"))


def write_document(document: dict, path: Path, restamp: bool = True) -> Path:
    if restamp:
        document = dict(document)
        document["payload_sha256"] = payload_digest(document["payload"])
    path.write_text(json.dumps(document, sort_keys=True, indent=1) + "\n",
                    encoding="utf-8")
    return path


# -- envelope corruption matrix ------------------------------------------------


class TestEnvelopeCorruption:
    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigError, match="malformed JSON"):
            load_pack(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "trunc.json"
        path.write_bytes(BUILTIN_PATH.read_bytes()[:500])
        with pytest.raises(ConfigError):
            load_pack(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="unreadable"):
            load_pack(tmp_path / "nope.json")

    def test_format_version_bump_rejected(self, document, tmp_path):
        document["format_version"] = PACK_FORMAT_VERSION + 1
        path = write_document(document, tmp_path / "v2.json")
        with pytest.raises(ConfigError, match="format version"):
            load_pack(path)

    def test_payload_edit_without_restamp_rejected(self, document,
                                                   tmp_path):
        document["payload"]["tcp_stacks"]["windows"]["ttl"] = 64
        path = write_document(document, tmp_path / "edited.json",
                              restamp=False)
        with pytest.raises(ConfigError, match="digest mismatch"):
            load_pack(path)

    def test_flipped_digest_rejected(self, document, tmp_path):
        stamped = document["payload_sha256"]
        document["payload_sha256"] = stamped[::-1]
        path = write_document(document, tmp_path / "flipped.json",
                              restamp=False)
        with pytest.raises(ConfigError, match="digest mismatch"):
            load_pack(path)

    @pytest.mark.parametrize("key", ("format_version", "name", "payload",
                                     "payload_sha256"))
    def test_missing_top_level_key_rejected(self, document, tmp_path,
                                            key):
        del document[key]
        path = write_document(document, tmp_path / "missing.json",
                              restamp=(key != "payload_sha256"
                                       and key != "payload"))
        with pytest.raises(ConfigError):
            load_pack(path)

    def test_unknown_top_level_key_rejected(self, document, tmp_path):
        document["surprise"] = True
        path = write_document(document, tmp_path / "extra.json")
        with pytest.raises(ConfigError, match="unknown top-level"):
            load_pack(path)

    def test_unknown_payload_section_rejected(self, document, tmp_path):
        document["payload"]["surprise"] = {}
        path = write_document(document, tmp_path / "extra.json")
        with pytest.raises(ConfigError, match="unknown payload"):
            load_pack(path)


# -- semantic validation -------------------------------------------------------


class TestSemanticValidation:
    def test_profile_referencing_unknown_spec_rejected(self, document,
                                                       tmp_path):
        document["payload"]["profiles"][0]["tcp_stack"] = "beos"
        path = write_document(document, tmp_path / "ref.json")
        with pytest.raises(ConfigError, match="unknown spec"):
            load_pack(path)

    def test_unknown_tls_library_rejected(self, document, tmp_path):
        document["payload"]["profiles"][0]["tls_library"] = "wolfssl9"
        path = write_document(document, tmp_path / "lineage.json")
        with pytest.raises(ConfigError, match="unknown tls_library"):
            load_pack(path)

    def test_unknown_profile_field_rejected(self, document, tmp_path):
        document["payload"]["profiles"][0]["color"] = "mauve"
        path = write_document(document, tmp_path / "field.json")
        with pytest.raises(ConfigError, match="unknown fields"):
            load_pack(path)

    def test_duplicate_flow_count_cell_rejected(self, document, tmp_path):
        counts = document["payload"]["flow_counts"]
        counts.append(list(counts[0]))
        path = write_document(document, tmp_path / "dup.json")
        with pytest.raises(ConfigError, match="duplicate cell"):
            load_pack(path)

    def test_unknown_platform_in_flow_counts_rejected(self, document,
                                                      tmp_path):
        document["payload"]["flow_counts"][0][0] = "vax_mosaic"
        path = write_document(document, tmp_path / "plat.json")
        with pytest.raises(ConfigError):
            load_pack(path)

    def test_quic_marked_platform_without_quic_spec_rejected(
            self, document, tmp_path):
        label = document["payload"]["youtube_quic_platforms"][0]
        for entry in document["payload"]["profiles"]:
            if entry["platform"] == label:
                entry["tls_quic"] = None
                entry["quic"] = None
        path = write_document(document, tmp_path / "quicless.json")
        with pytest.raises(ConfigError, match="no QUIC spec"):
            load_pack(path)

    def test_flow_count_must_be_positive(self, document, tmp_path):
        document["payload"]["flow_counts"][0][2] = 0
        path = write_document(document, tmp_path / "zero.json")
        with pytest.raises(ConfigError, match="positive integer"):
            load_pack(path)


# -- byte-stability ------------------------------------------------------------


class TestByteStability:
    def test_regenerator_reproduces_committed_packs(self, tmp_path):
        """The committed pack files are exactly what the seeded
        regenerator emits — edits must go through it."""
        written = write_builtin_packs(tmp_path)
        assert sorted(p.name for p in written) == sorted(
            p.name for p in DATA_DIR.glob("*.json"))
        for path in written:
            assert path.read_bytes() == \
                (DATA_DIR / path.name).read_bytes(), path.name

    def test_write_load_write_is_stable(self, tmp_path):
        first = {p.name: p.read_bytes()
                 for p in write_builtin_packs(tmp_path / "a")}
        for name in first:
            load_pack(tmp_path / "a" / name)  # full validation pass
        second = {p.name: p.read_bytes()
                  for p in write_builtin_packs(tmp_path / "b")}
        assert first == second

    def test_digest_is_effective_payload_digest(self):
        pack = load_pack(BUILTIN_PATH)
        document = json.loads(BUILTIN_PATH.read_text(encoding="utf-8"))
        assert pack.digest == document["payload_sha256"]
        assert pack.digest == payload_digest(document["payload"])


# -- override/merge ------------------------------------------------------------


class TestOverrideMerge:
    def test_dict_sections_merge_per_key(self):
        base = {"tcp_stacks": {"a": {"ttl": 64}, "b": {"ttl": 128}}}
        overlay = {"tcp_stacks": {"b": {"ttl": 255}, "c": {"ttl": 32}}}
        merged = merge_payload(base, overlay)
        assert merged["tcp_stacks"] == {
            "a": {"ttl": 64}, "b": {"ttl": 255}, "c": {"ttl": 32}}

    def test_profiles_merge_field_level_per_cell(self):
        base = {"profiles": [
            {"platform": "windows_chrome", "tcp_stack": "windows",
             "tls_tcp": "chrome"},
        ]}
        overlay = {"profiles": [
            {"platform": "windows_chrome", "tls_library": "boringssl"},
        ]}
        merged = merge_payload(base, overlay)
        assert merged["profiles"] == [
            {"platform": "windows_chrome", "tcp_stack": "windows",
             "tls_tcp": "chrome", "tls_library": "boringssl"},
        ]

    def test_list_sections_replace_wholesale(self):
        base = {"youtube_quic_platforms": ["a", "b"]}
        overlay = {"youtube_quic_platforms": ["c"]}
        assert merge_payload(base, overlay)[
            "youtube_quic_platforms"] == ["c"]

    def test_tls_lib_overlay_keeps_builtin_fingerprints(self):
        """The committed TLS-library pack changes labels, not wire
        behavior: every materialized profile equals the builtin's."""
        base = load_pack(BUILTIN_PATH)
        overlay = load_pack(TLS_LIB_PATH)
        assert overlay.digest != base.digest
        assert overlay.has_tls_library_axis()
        assert not base.has_tls_library_axis()
        assert overlay.all_pairs() == base.all_pairs()
        for platform, provider in base.all_pairs():
            assert overlay.get_profile(platform, provider) == \
                base.get_profile(platform, provider)
            assert overlay.tls_library(platform, provider) in \
                TLS_LIBRARIES

    def test_missing_base_pack_rejected(self, document, tmp_path):
        document["name"] = "orphan"
        document["extends"] = "no-such-base"
        path = write_document(document, tmp_path / "orphan.json")
        with pytest.raises(ConfigError, match="not found"):
            load_pack(path, search_dirs=[tmp_path])

    def test_circular_extends_rejected(self, document, tmp_path):
        first = dict(document, name="ouro", extends="boros")
        second = dict(document, name="boros", extends="ouro")
        write_document(first, tmp_path / "ouro.json")
        write_document(second, tmp_path / "boros.json")
        with pytest.raises(ConfigError, match="circular"):
            load_pack(tmp_path / "ouro.json", search_dirs=[tmp_path])


# -- registry + active pack ----------------------------------------------------


class TestRegistry:
    def test_committed_packs_discovered(self):
        registry = PackRegistry()
        assert BUILTIN_PACK_NAME in registry.names()
        assert "tls-lib-2023q3" in registry.names()

    def test_unknown_name_lists_available(self):
        registry = PackRegistry()
        with pytest.raises(ConfigError, match="available"):
            registry.get("no-such-pack")

    def test_later_directory_shadows_committed_pack(self, document,
                                                    tmp_path):
        document["version"] = "2024q1-patched"
        write_document(document,
                       tmp_path / f"{BUILTIN_PACK_NAME}.json")
        registry = PackRegistry([tmp_path])
        assert registry.get(BUILTIN_PACK_NAME).version == "2024q1-patched"
        assert registry.path(BUILTIN_PACK_NAME).parent == tmp_path

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            PackRegistry([tmp_path / "absent"])

    def test_active_pack_defaults_to_builtin_and_reverts(self):
        assert active_pack().name == BUILTIN_PACK_NAME
        overlay = load_pack(TLS_LIB_PATH)
        set_active_pack(overlay)
        assert active_pack() is overlay
        set_active_pack(None)
        assert active_pack().name == BUILTIN_PACK_NAME


# -- pack <-> bank compatibility ----------------------------------------------


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(seed=47, scale=0.05)


def _small_bank(lab, **kwargs) -> ClassifierBank:
    return ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=4, max_depth=10, random_state=3),
        **kwargs)


class TestBankPackDiscipline:
    def test_bank_stamps_active_pack(self, lab):
        bank = _small_bank(lab)
        assert bank.pack_info == builtin_pack().info()
        assert bank.label_mode == "platform"

    def test_bank_roundtrips_under_matching_pack(self, lab, tmp_path):
        bank = _small_bank(lab)
        save_bank(bank, tmp_path / "bank")
        reloaded = load_bank(tmp_path / "bank")
        assert reloaded.pack_info == bank.pack_info
        assert reloaded.label_mode == "platform"

    def test_bank_refuses_mismatched_active_pack(self, lab, tmp_path):
        bank = _small_bank(lab)
        save_bank(bank, tmp_path / "bank")
        set_active_pack(load_pack(TLS_LIB_PATH))
        with pytest.raises(ConfigError, match="active pack"):
            load_bank(tmp_path / "bank")
        set_active_pack(None)
        assert load_bank(tmp_path / "bank").pack_info == bank.pack_info

    def test_tls_library_mode_requires_the_axis(self, lab):
        with pytest.raises(ConfigError, match="tls_library"):
            _small_bank(lab, label_mode="tls_library")

    def test_unknown_label_mode_rejected(self, lab):
        with pytest.raises(ConfigError, match="label mode"):
            _small_bank(lab, label_mode="cipherpunk")

    def test_tls_library_bank_classifies_at_stack_granularity(self, lab):
        """With the TLS-library pack active, the platform model's label
        space is implementation lineages, and a campus-style mix comes
        back labeled by TLS stack, not by platform."""
        pack = load_pack(TLS_LIB_PATH)
        bank = _small_bank(lab, pack=pack, label_mode="tls_library")
        for scenario in bank.scenarios.values():
            assert set(scenario.platform_model.classes_) <= \
                set(TLS_LIBRARIES)
        pipeline = RealtimePipeline(bank)
        classified = []
        for flow in list(lab)[::7][:60]:
            record = pipeline.process_flow(flow)
            if record is not None and \
                    record.prediction.status == "classified":
                classified.append(record.prediction.platform)
        assert classified
        assert set(classified) <= set(TLS_LIBRARIES)

    def test_tls_library_bank_agrees_with_pack_lineage(self, lab):
        """Seeded lab flows carry ground-truth platform labels; the
        lineage the TLS bank predicts should usually be the lineage the
        pack assigns to that platform (the forests are small, so allow
        a minority of misses)."""
        pack = load_pack(TLS_LIB_PATH)
        bank = _small_bank(lab, pack=pack, label_mode="tls_library")
        pipeline = RealtimePipeline(bank)
        hits = total = 0
        for flow in list(lab)[::11][:80]:
            record = pipeline.process_flow(flow)
            if record is None or \
                    record.prediction.status != "classified":
                continue
            expected = pack.tls_library(
                UserPlatform.from_label(flow.platform_label),
                flow.provider)
            total += 1
            hits += record.prediction.platform == expected
        assert total >= 10
        assert hits / total > 0.6
