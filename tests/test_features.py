"""Tests for the feature layer: schema, extraction, encoding, importance."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DatasetError, NotFittedError, ParseError
from repro.features import (
    ATTRIBUTES,
    AttributeEncoder,
    GREASE_SYMBOL,
    assert_schema_consistent,
    attribute,
    attributes_for,
    entropy,
    extract_flow_attributes,
    mutual_information,
    normalized_information_gain,
    rank_attributes,
    unique_value_count,
)
from repro.fingerprints import Provider, Transport
from repro.trafficgen import generate_lab_dataset


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(seed=11, scale=0.05)


@pytest.fixture(scope="module")
def yt_quic_samples(lab):
    subset = lab.subset(provider=Provider.YOUTUBE,
                        transport=Transport.QUIC)
    samples, labels = [], []
    for flow in subset:
        values, _ = extract_flow_attributes(flow.packets)
        samples.append(values)
        labels.append(flow.platform_label)
    return samples, labels


class TestSchema:
    def test_consistent(self):
        assert_schema_consistent()

    def test_62_attributes(self):
        assert len(ATTRIBUTES) == 62

    def test_labels_unique_and_ordered(self):
        labels = [spec.label for spec in ATTRIBUTES]
        assert len(set(labels)) == 62
        assert labels[0] == "t1" and labels[-1] == "q20"

    def test_lookup_by_name_and_label(self):
        assert attribute("cipher_suites").label == "m3"
        assert attribute("m3").name == "cipher_suites"
        assert attribute("ttl").cost.value == "low"
        assert attribute("tls_version").cost.value == "medium"
        assert attribute("key_share").cost.value == "high"

    def test_transport_applicability(self):
        quic_names = {s.name for s in attributes_for(Transport.QUIC)}
        tcp_names = {s.name for s in attributes_for(Transport.TCP)}
        assert "tcp_mss" not in quic_names
        assert "grease_quic_bit" not in tcp_names
        assert "ttl" in quic_names and "ttl" in tcp_names


class TestExtraction:
    def test_tcp_flow_attributes(self, lab):
        flow = next(f for f in lab if f.transport is Transport.TCP
                    and f.platform_label == "windows_chrome")
        values, record = extract_flow_attributes(flow.packets)
        assert values["ttl"] == 128
        assert values["tcp_syn"] == 1
        assert values["tcp_ack"] == 0
        assert values["tcp_mss"] in (1460, 1440)
        assert values["tcp_window_size"] == 64240
        assert values["handshake_length"] > 200
        # length-kind: 1 + extension data length (5 bytes of list/type/
        # length framing plus the hostname).
        assert values["server_name"] == len(flow.sni) + 6
        assert record.sni == flow.sni

    def test_quic_flow_attributes(self, lab):
        flow = next(f for f in lab if f.transport is Transport.QUIC
                    and f.platform_label == "windows_chrome")
        values, record = extract_flow_attributes(flow.packets)
        assert values["ttl"] == 128
        assert values["initial_max_data"] == 15728640
        assert values["max_idle_timeout"] == 30000
        assert "Chrome" in values["user_agent"]
        assert values["quic_parameters"]
        assert GREASE_SYMBOL in values["quic_parameters"]
        assert "tcp_mss" not in values

    def test_grease_folded_in_cipher_suites(self, lab):
        flow = next(f for f in lab if f.platform_label == "windows_chrome"
                    and f.transport is Transport.TCP)
        values, _ = extract_flow_attributes(flow.packets)
        assert values["cipher_suites"][0] == GREASE_SYMBOL
        assert values["supported_groups"][0] == GREASE_SYMBOL

    def test_firefox_quic_has_grease_quic_bit(self, lab):
        flow = next(f for f in lab
                    if f.platform_label == "windows_firefox"
                    and f.transport is Transport.QUIC)
        values, _ = extract_flow_attributes(flow.packets)
        assert values["grease_quic_bit"] == 1
        assert values["user_agent"] is None
        assert values["google_version"] is None

    def test_ps5_missing_tls13_machinery(self, lab):
        flow = next(f for f in lab if f.platform_label == "ps5_nativeApp")
        values, _ = extract_flow_attributes(flow.packets)
        assert values["supported_versions"] == ()
        assert values["key_share"] == ()
        assert values["psk_key_exchange_modes"] is None

    def test_empty_flow_rejected(self):
        with pytest.raises(ParseError):
            extract_flow_attributes([])


class TestEncoder:
    def test_fit_transform_shape(self, yt_quic_samples):
        samples, labels = yt_quic_samples
        encoder = AttributeEncoder(Transport.QUIC)
        matrix = encoder.fit_transform(samples)
        assert matrix.shape[0] == len(samples)
        assert matrix.shape[1] == encoder.n_features
        assert matrix.shape[1] > 60  # lists expand to slots

    def test_absent_encodes_zero(self, yt_quic_samples):
        samples, _ = yt_quic_samples
        encoder = AttributeEncoder(Transport.QUIC).fit(samples)
        # Firefox samples have no user_agent -> column value 0.
        col = encoder.columns_for("user_agent")[0]
        matrix = encoder.transform(samples)
        firefox_rows = [i for i, s in enumerate(samples)
                        if s["user_agent"] is None]
        assert firefox_rows
        assert all(matrix[i, col] == 0 for i in firefox_rows)

    def test_unseen_value_maps_to_unknown(self, yt_quic_samples):
        samples, _ = yt_quic_samples
        encoder = AttributeEncoder(Transport.QUIC).fit(samples)
        modified = dict(samples[0])
        modified["user_agent"] = "TotallyNewAgent/1.0"
        row = encoder.transform([modified])
        col = encoder.columns_for("user_agent")[0]
        assert row[0, col] == 1  # UNKNOWN_CODE

    def test_list_positional_encoding(self, yt_quic_samples):
        samples, _ = yt_quic_samples
        encoder = AttributeEncoder(Transport.QUIC).fit(samples)
        cols = encoder.columns_for("cipher_suites")
        assert len(cols) >= 10
        matrix = encoder.transform(samples)
        # first slot is the GREASE symbol or a real suite; all encoded > 0
        assert (matrix[:, cols[0]] > 0).all()

    def test_columns_for_attributes_subset(self, yt_quic_samples):
        samples, _ = yt_quic_samples
        encoder = AttributeEncoder(Transport.QUIC).fit(samples)
        subset_cols = encoder.columns_for_attributes(["ttl",
                                                      "cipher_suites"])
        assert len(subset_cols) == 1 + len(
            encoder.columns_for("cipher_suites"))

    def test_restricting_attribute_names(self, yt_quic_samples):
        samples, _ = yt_quic_samples
        encoder = AttributeEncoder(
            Transport.QUIC, attribute_names=["ttl", "initial_max_data"])
        matrix = encoder.fit_transform(samples)
        assert matrix.shape[1] == 2

    def test_tcp_attribute_rejected_for_quic(self):
        with pytest.raises(DatasetError):
            AttributeEncoder(Transport.QUIC, attribute_names=["tcp_mss"])

    def test_requires_fit(self):
        encoder = AttributeEncoder(Transport.TCP)
        with pytest.raises(NotFittedError):
            encoder.transform([])
        with pytest.raises(DatasetError):
            encoder.fit([])


class TestInformationTheory:
    def test_entropy_uniform(self):
        assert entropy(["a", "b", "a", "b"]) == pytest.approx(1.0)

    def test_entropy_degenerate(self):
        assert entropy(["a"] * 10) == 0.0

    def test_mi_perfect_dependence(self):
        xs = ["u", "v", "u", "v", "w", "w"]
        ys = ["A", "B", "A", "B", "C", "C"]
        assert mutual_information(xs, ys) == pytest.approx(entropy(ys))

    def test_mi_independence(self):
        xs = ["u", "u", "v", "v"]
        ys = ["A", "B", "A", "B"]
        assert mutual_information(xs, ys) == pytest.approx(0.0, abs=1e-12)

    def test_normalized_bounds(self):
        xs = ["u", "v", "u", "w"]
        ys = ["A", "B", "A", "B"]
        assert 0.0 <= normalized_information_gain(xs, ys) <= 1.0

    @given(st.lists(st.sampled_from("abc"), min_size=2, max_size=50))
    def test_mi_with_self_is_entropy(self, xs):
        assert mutual_information(xs, xs) == pytest.approx(entropy(xs))

    @given(st.lists(st.tuples(st.sampled_from("ab"),
                              st.sampled_from("xyz")),
                    min_size=2, max_size=60))
    def test_mi_symmetry(self, pairs):
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        assert mutual_information(xs, ys) == \
            pytest.approx(mutual_information(ys, xs))


class TestImportanceOnLabData:
    def test_rank_attributes_scores(self, yt_quic_samples):
        samples, labels = yt_quic_samples
        ranked = rank_attributes(samples, labels, Transport.QUIC)
        assert len(ranked) == 50
        by_name = {imp.spec.name: imp for imp in ranked}
        # The QUIC parameter *sets* differ strongly across families.
        assert by_name["quic_parameters"].score > 0.2
        # ttl should matter (device signal: windows 128 vs rest 64).
        assert by_name["ttl"].score > 0.1
        # tcp-only attributes are absent.
        assert "tcp_mss" not in by_name

    def test_unique_value_count(self, yt_quic_samples):
        samples, _ = yt_quic_samples
        assert unique_value_count(samples, "ttl") == 2  # 64 and 128
        assert unique_value_count(samples, "handshake_length") > 2
