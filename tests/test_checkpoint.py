"""Checkpoint/restore equivalence and crash-recovery suite.

The contract (mirroring PR 1–4's equivalence discipline): a campus
replay interrupted at an arbitrary point — including a SIGKILLed
parallel worker — and resumed from the last checkpoint must finish
with counters, predictions, record order, and rollup snapshot bytes
identical to an uninterrupted run *with the same checkpoint schedule*,
at any worker count, through both ingest paths. Checkpointing itself
is equivalence-preserving at a boundary (it drains the classification
buffer and flushes sketch buffers), which is why the oracle runs the
schedule too.
"""

import json
import os
import signal

import pytest

from repro.errors import ConfigError
from repro.ml import RandomForestClassifier
from repro.net import PcapWriter
from repro.pipeline import (
    ClassifierBank,
    ConceptDriftMonitor,
    ParallelShardedPipeline,
    RealtimePipeline,
    ShardedPipeline,
    checkpoint_kind,
    ingest_pcap,
    load_ingest_position,
    save_bank,
)
from repro.telemetry import save_rollup
from repro.trafficgen import generate_lab_dataset

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(seed=47, scale=0.05)


@pytest.fixture(scope="module")
def bank(lab):
    return ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=5, max_depth=12, random_state=1))


@pytest.fixture(scope="module")
def bank_dir(bank, tmp_path_factory):
    path = tmp_path_factory.mktemp("bank") / "bank"
    save_bank(bank, path)
    return path


@pytest.fixture(scope="module")
def retrained_bank(lab):
    """A deliberately different bank (fewer, shallower trees over a
    different seed) so hot-reload tests can tell which bank classified
    a flow."""
    return ClassifierBank.train(
        generate_lab_dataset(seed=11, scale=0.05),
        model_factory=lambda: RandomForestClassifier(
            n_estimators=3, max_depth=8, random_state=7))


@pytest.fixture(scope="module")
def retrained_bank_dir(retrained_bank, tmp_path_factory):
    path = tmp_path_factory.mktemp("bank2") / "bank"
    save_bank(retrained_bank, path)
    return path


@pytest.fixture(scope="module")
def campus_frames(lab):
    """Timestamp-ordered video handshakes from every scenario — the
    replay under interruption."""
    flows = list(lab)[::5][:60]
    frames = [(p.to_bytes(), p.timestamp)
              for flow in flows for p in flow.packets]
    frames.sort(key=lambda pair: pair[1])
    return frames


@pytest.fixture(scope="module")
def campus_pcap(campus_frames, tmp_path_factory):
    path = tmp_path_factory.mktemp("pcap") / "campus.pcap"
    with PcapWriter(path) as writer:
        for data, timestamp in campus_frames:
            writer.write_bytes(data, timestamp)
    return path


def _assert_identical(left, right, tmp_path, tag):
    """Counters, record order, predictions, and rollup snapshot bytes
    all equal — the full byte-level contract."""
    assert left.counters == right.counters
    left_records = list(left.store)
    right_records = list(right.store)
    assert left_records == right_records
    assert [(str(r.key), r.prediction) for r in left_records] == \
        [(str(r.key), r.prediction) for r in right_records]
    left_rollup = getattr(left, "rollup", None)
    if left_rollup is not None:
        save_rollup(left_rollup, tmp_path / f"{tag}-a")
        save_rollup(right.rollup, tmp_path / f"{tag}-b")
        assert (tmp_path / f"{tag}-a" / "rollup.json").read_bytes() == \
            (tmp_path / f"{tag}-b" / "rollup.json").read_bytes()


class _Crash(Exception):
    """The simulated mid-replay process death."""


class _CrashAfter:
    """Pipeline proxy that dies after ``n`` processed frames — the
    'interrupt anywhere' knob for ingest-driven tests."""

    def __init__(self, pipeline, n):
        self._pipeline = pipeline
        self._left = n

    def __getattr__(self, name):
        return getattr(self._pipeline, name)

    def _tick(self):
        if self._left <= 0:
            raise _Crash()
        self._left -= 1

    def process_raw(self, raw):
        self._tick()
        self._pipeline.process_raw(raw)

    def process_packet(self, packet):
        self._tick()
        self._pipeline.process_packet(packet)


class TestRealtimeCheckpoint:
    @pytest.mark.parametrize("cut", (0.2, 0.55, 0.9))
    def test_restore_equals_continuation(self, bank, campus_frames,
                                         tmp_path, cut):
        """Interrupt at an arbitrary frame: the restored pipeline and
        the original (which kept running after its checkpoint) finish
        byte-identically."""
        k = int(len(campus_frames) * cut)
        original = RealtimePipeline(bank, batch_size=8,
                                    retention="both")
        original.process_frames(campus_frames[:k])
        original.save_checkpoint(tmp_path / "ck")
        restored = RealtimePipeline.restore(tmp_path / "ck", bank)
        original.process_frames(campus_frames[k:])
        original.flush()
        restored.process_frames(campus_frames[k:])
        restored.flush()
        _assert_identical(restored, original, tmp_path, f"cut{cut}")

    def test_checkpoint_preserves_live_flow_table(self, bank,
                                                  campus_frames,
                                                  tmp_path):
        pipeline = RealtimePipeline(bank, batch_size=8)
        pipeline.process_frames(campus_frames[:len(campus_frames) // 3])
        pipeline.save_checkpoint(tmp_path / "ck")
        restored = RealtimePipeline.restore(tmp_path / "ck", bank)
        assert restored.live_flows == pipeline.live_flows
        assert restored.live_flows > 0
        # Checkpointing drained the buffer on both sides.
        assert restored.pending_classifications == 0
        assert pipeline.pending_classifications == 0

    def test_restore_rejects_kind_and_retention_mismatch(
            self, bank, campus_frames, tmp_path):
        pipeline = RealtimePipeline(bank, batch_size=8)
        pipeline.process_frames(campus_frames[:40])
        pipeline.save_checkpoint(tmp_path / "ck")
        with pytest.raises(ConfigError):
            ShardedPipeline.restore(tmp_path / "ck", bank)
        with pytest.raises(ConfigError):
            RealtimePipeline.restore(tmp_path / "ck", bank,
                                     retention="rollup")
        sharded = ShardedPipeline(bank, num_shards=2)
        sharded.save_checkpoint(tmp_path / "sck")
        with pytest.raises(ConfigError):
            RealtimePipeline.restore(tmp_path / "sck", bank)
        assert checkpoint_kind(tmp_path / "ck") == "realtime"
        assert checkpoint_kind(tmp_path / "sck") == "sharded"
        assert checkpoint_kind(tmp_path / "nothing-here") is None

    def test_monitor_state_rides_checkpoints(self, bank, campus_frames,
                                             tmp_path):
        monitor = ConceptDriftMonitor(min_observations=5)
        pipeline = RealtimePipeline(bank, batch_size=4,
                                    monitor=monitor)
        pipeline.process_frames(campus_frames)
        pipeline.drain()
        observed = sum(r.observed_flows for r in monitor.reports())
        assert observed == pipeline.counters.video_flows
        pipeline.save_checkpoint(tmp_path / "ck")
        restored = RealtimePipeline.restore(tmp_path / "ck", bank)
        assert restored.monitor is not None
        assert restored.monitor.state_dict() == monitor.state_dict()


class TestIngestResume:
    """The pcap-replay resume path: crash anywhere, restore from the
    last checkpoint, replay the delta, finish identical to the
    uninterrupted oracle running the same checkpoint schedule."""

    def _schedule(self, campus_frames):
        start = campus_frames[0][1]
        end = campus_frames[-1][1]
        span = max(end - start, 1.0)
        return dict(idle_timeout=span / 3,
                    checkpoint_interval=span / 6)

    @pytest.mark.parametrize("mode", ("raw", "eager"))
    @pytest.mark.parametrize("crash_at", (120, 260))
    def test_serial_resume_identical(self, bank, campus_frames,
                                     campus_pcap, tmp_path, mode,
                                     crash_at):
        schedule = self._schedule(campus_frames)
        oracle = RealtimePipeline(bank, batch_size=8, retention="both")
        oracle_result = ingest_pcap(
            oracle, campus_pcap, mode=mode,
            checkpoint_dir=tmp_path / "oracle-ck",
            idle_timeout=schedule["idle_timeout"],
            checkpoint_interval=schedule["checkpoint_interval"])
        oracle.flush()

        victim = RealtimePipeline(bank, batch_size=8, retention="both")
        with pytest.raises(_Crash):
            ingest_pcap(_CrashAfter(victim, crash_at), campus_pcap,
                        mode=mode, checkpoint_dir=tmp_path / "ck",
                        idle_timeout=schedule["idle_timeout"],
                        checkpoint_interval=schedule[
                            "checkpoint_interval"])
        position = load_ingest_position(tmp_path / "ck")
        assert 0 < position.consumed <= crash_at

        resumed = RealtimePipeline.restore(tmp_path / "ck", bank)
        result = ingest_pcap(
            resumed, campus_pcap, mode=mode,
            checkpoint_dir=tmp_path / "ck",
            resume_dir=tmp_path / "ck",
            idle_timeout=schedule["idle_timeout"],
            checkpoint_interval=schedule["checkpoint_interval"])
        resumed.flush()
        assert result == oracle_result
        _assert_identical(resumed, oracle, tmp_path,
                          f"{mode}{crash_at}")

    @pytest.mark.parametrize("shards", (2, 4))
    def test_sharded_resume_identical(self, bank, campus_frames,
                                      campus_pcap, tmp_path, shards):
        schedule = self._schedule(campus_frames)
        oracle = ShardedPipeline(bank, num_shards=shards, batch_size=8,
                                 retention="both")
        ingest_pcap(oracle, campus_pcap,
                    checkpoint_dir=tmp_path / "oracle-ck", **schedule)
        oracle.flush()

        victim = ShardedPipeline(bank, num_shards=shards, batch_size=8,
                                 retention="both")
        with pytest.raises(_Crash):
            ingest_pcap(_CrashAfter(victim, 200), campus_pcap,
                        checkpoint_dir=tmp_path / "ck", **schedule)
        resumed = ShardedPipeline.restore(tmp_path / "ck", bank)
        ingest_pcap(resumed, campus_pcap, checkpoint_dir=tmp_path / "ck",
                    resume_dir=tmp_path / "ck", **schedule)
        resumed.flush()
        assert resumed.counters == oracle.counters
        assert list(resumed.telemetry) == list(oracle.telemetry)
        save_rollup(resumed.rollup, tmp_path / "rr")
        save_rollup(oracle.rollup, tmp_path / "ro")
        assert (tmp_path / "rr" / "rollup.json").read_bytes() == \
            (tmp_path / "ro" / "rollup.json").read_bytes()

    def test_resume_without_position_rejected(self, bank, campus_frames,
                                              tmp_path):
        pipeline = RealtimePipeline(bank)
        pipeline.process_frames(campus_frames[:20])
        pipeline.save_checkpoint(tmp_path / "ck")  # no ingest sidecar
        with pytest.raises(ConfigError):
            load_ingest_position(tmp_path / "ck")

    def test_resume_without_interval_knobs(self, bank, campus_frames,
                                           campus_pcap, tmp_path):
        """Resuming a checkpoint whose run had eviction + checkpoint
        ticks, with neither knob set this time, must drop the saved
        deadlines (not fire them against a None interval)."""
        schedule = self._schedule(campus_frames)
        victim = RealtimePipeline(bank, batch_size=8)
        with pytest.raises(_Crash):
            ingest_pcap(_CrashAfter(victim, 200), campus_pcap,
                        checkpoint_dir=tmp_path / "ck", **schedule)
        resumed = RealtimePipeline.restore(tmp_path / "ck", bank)
        result = ingest_pcap(resumed, campus_pcap,
                             resume_dir=tmp_path / "ck")
        resumed.flush()
        plain = RealtimePipeline(bank, batch_size=8)
        ingest_pcap(plain, campus_pcap)
        plain.flush()
        assert result.frames == len(campus_frames)
        assert resumed.counters.video_flows == \
            plain.counters.video_flows
        assert len(list(resumed.store)) == len(list(plain.store))

    def test_corrupt_position_sidecar_rejected_at_restore(
            self, bank, campus_frames, campus_pcap, tmp_path):
        """The replay-position sidecar is covered by the checkpoint's
        digest scheme: a flipped byte in ingest.json (which would
        silently skip/replay hundreds of records) fails the restore."""
        schedule = self._schedule(campus_frames)
        victim = RealtimePipeline(bank, batch_size=8)
        with pytest.raises(_Crash):
            ingest_pcap(_CrashAfter(victim, 200), campus_pcap,
                        checkpoint_dir=tmp_path / "ck", **schedule)
        path = tmp_path / "ck" / "ingest.json"
        data = path.read_text().replace('"consumed"', '"consuned"')
        path.write_text(data)
        with pytest.raises(ConfigError):
            RealtimePipeline.restore(tmp_path / "ck", bank)

    def test_corrupt_sidecar_rejected_on_sharded_meta(self, bank,
                                                      campus_frames,
                                                      tmp_path):
        sharded = ShardedPipeline(bank, num_shards=2, batch_size=8)
        sharded.process_frames(campus_frames[:60])
        sharded.save_checkpoint(tmp_path / "ck",
                                extra={"ingest.json": "{\"x\": 1}"})
        (tmp_path / "ck" / "ingest.json").write_text("{\"x\": 2}")
        with pytest.raises(ConfigError):
            ShardedPipeline.restore(tmp_path / "ck", bank)

    def test_checkpoint_dir_requires_interval(self, bank, campus_pcap):
        pipeline = RealtimePipeline(bank)
        with pytest.raises(ValueError):
            ingest_pcap(pipeline, campus_pcap,
                        checkpoint_dir="somewhere")

    def test_resume_against_truncated_capture_rejected(
            self, bank, campus_frames, campus_pcap, tmp_path):
        """Pointing a resume at a capture shorter than the saved
        position (wrong file, truncated file) must fail loudly, not
        return stale totals."""
        schedule = self._schedule(campus_frames)
        victim = RealtimePipeline(bank, batch_size=8)
        with pytest.raises(_Crash):
            ingest_pcap(_CrashAfter(victim, 250), campus_pcap,
                        checkpoint_dir=tmp_path / "ck", **schedule)
        position = load_ingest_position(tmp_path / "ck")
        short = tmp_path / "short.pcap"
        with PcapWriter(short) as writer:
            for data, timestamp in \
                    campus_frames[:position.consumed // 2]:
                writer.write_bytes(data, timestamp)
        resumed = RealtimePipeline.restore(tmp_path / "ck", bank)
        with pytest.raises(ConfigError, match="fewer records"):
            ingest_pcap(resumed, short, resume_dir=tmp_path / "ck")

    def test_interrupted_swap_window_heals(self, bank, campus_frames,
                                           tmp_path):
        """A crash between the swap's two renames leaves the previous
        checkpoint under <dir>.replaced; the next load puts it back."""
        pipeline = RealtimePipeline(bank, batch_size=8)
        pipeline.process_frames(campus_frames[:80])
        pipeline.save_checkpoint(tmp_path / "ck")
        expected_counters = RealtimePipeline.restore(
            tmp_path / "ck", bank).counters
        # Simulate the window: target renamed away, new dir not yet in.
        (tmp_path / "ck").rename(tmp_path / "ck.replaced")
        assert checkpoint_kind(tmp_path / "ck") == "realtime"
        restored = RealtimePipeline.restore(tmp_path / "ck", bank)
        assert restored.counters == expected_counters


class TestParallelCrashRecovery:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_sigkill_worker_mid_replay(self, bank, bank_dir,
                                       campus_frames, tmp_path,
                                       workers):
        """SIGKILL one worker after a checkpoint: the parent respawns
        it from the shard checkpoint, replays the journaled delta, and
        the merged views finish byte-identical to the uninterrupted
        serial oracle with the same checkpoint boundary."""
        k = len(campus_frames) // 2
        oracle = ShardedPipeline(bank, num_shards=workers, batch_size=8,
                                 retention="both")
        oracle.process_frames(campus_frames[:k])
        oracle.save_checkpoint(tmp_path / "oracle-ck")
        oracle.process_frames(campus_frames[k:])
        oracle.flush()

        par = ParallelShardedPipeline(bank_dir, num_workers=workers,
                                      batch_size=8, retention="both",
                                      checkpoint_dir=tmp_path / "ck",
                                      chunk_items=16)
        try:
            par.process_frames(campus_frames[:k])
            par.save_checkpoint()
            # Feed part of the delta, then kill a worker cold.
            par.process_frames(campus_frames[k:k + 60])
            victim = par._workers[workers - 1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            par.process_frames(campus_frames[k + 60:])
            par.flush()
            assert par.counters == oracle.counters
            assert par.shard_loads == oracle.shard_loads
            assert list(par.telemetry) == list(oracle.telemetry)
            save_rollup(par.rollup, tmp_path / "pr")
            save_rollup(oracle.rollup, tmp_path / "or")
            assert (tmp_path / "pr" / "rollup.json").read_bytes() == \
                (tmp_path / "or" / "rollup.json").read_bytes()
            assert sum(par._restarts) >= 1
        finally:
            par.close()

    def test_sigkill_before_any_checkpoint_replays_from_scratch(
            self, bank, bank_dir, campus_frames, tmp_path):
        """With checkpoint_dir armed but no checkpoint saved yet, the
        journal reaches back to construction and recovery replays the
        whole stream into a fresh worker."""
        oracle = ShardedPipeline(bank, num_shards=2, batch_size=8)
        oracle.process_frames(campus_frames)
        oracle.flush()
        par = ParallelShardedPipeline(bank_dir, num_workers=2,
                                      batch_size=8,
                                      checkpoint_dir=tmp_path / "ck",
                                      chunk_items=16)
        try:
            par.process_frames(campus_frames[:80])
            victim = par._workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            par.process_frames(campus_frames[80:])
            par.flush()
            assert par.counters == oracle.counters
            assert list(par.telemetry) == list(oracle.telemetry)
        finally:
            par.close()

    def test_without_checkpoint_dir_stays_fail_fast(self, bank_dir,
                                                    campus_frames):
        par = ParallelShardedPipeline(bank_dir, num_workers=1,
                                      chunk_items=16)
        par._workers[0].terminate()
        par._workers[0].join()
        with pytest.raises(RuntimeError, match="worker 0"):
            par.process_frames(campus_frames)
        par.terminate()

    def test_restart_budget_exhausts(self, bank_dir, campus_frames,
                                     tmp_path):
        """A worker that keeps dying burns its per-window restart
        budget and the failure finally surfaces."""
        par = ParallelShardedPipeline(bank_dir, num_workers=1,
                                      checkpoint_dir=tmp_path / "ck",
                                      chunk_items=8,
                                      max_worker_restarts=0)
        par._workers[0].terminate()
        par._workers[0].join()
        with pytest.raises(RuntimeError, match="recovery gave up"):
            par.process_frames(campus_frames)
        par.terminate()


class TestRestoreVariants:
    def test_restore_with_hot_reloaded_bank(self, bank, retrained_bank,
                                            campus_frames, tmp_path):
        """Crash, restore, hot-swap the retrained bank at the
        checkpoint boundary: identical to an uninterrupted run that
        swapped at the same boundary — and the swap visibly changes
        classifications versus never swapping."""
        k = len(campus_frames) // 2
        oracle = RealtimePipeline(bank, batch_size=8)
        oracle.process_frames(campus_frames[:k])
        oracle.save_checkpoint(tmp_path / "oracle-ck")
        oracle.reload_bank(retrained_bank)
        oracle.process_frames(campus_frames[k:])
        oracle.flush()

        victim = RealtimePipeline(bank, batch_size=8)
        victim.process_frames(campus_frames[:k])
        victim.save_checkpoint(tmp_path / "ck")
        # victim dies here; restore into a fresh process + new bank
        resumed = RealtimePipeline.restore(tmp_path / "ck", bank)
        resumed.reload_bank(retrained_bank)
        resumed.process_frames(campus_frames[k:])
        resumed.flush()
        assert resumed.counters == oracle.counters
        assert list(resumed.store) == list(oracle.store)

        # The reload mattered: a no-swap run classifies differently.
        noswap = RealtimePipeline.restore(tmp_path / "ck", bank)
        noswap.process_frames(campus_frames[k:])
        noswap.flush()
        assert [r.prediction for r in noswap.store] != \
            [r.prediction for r in resumed.store]

    def test_parallel_restore_with_reloaded_bank(
            self, bank, bank_dir, retrained_bank, retrained_bank_dir,
            campus_frames, tmp_path):
        k = len(campus_frames) // 2
        oracle = ShardedPipeline(bank, num_shards=2, batch_size=8)
        oracle.process_frames(campus_frames[:k])
        oracle.save_checkpoint(tmp_path / "oracle-ck")
        oracle.reload_bank(retrained_bank)
        oracle.process_frames(campus_frames[k:])
        oracle.flush()

        first = ParallelShardedPipeline(bank_dir, num_workers=2,
                                        batch_size=8,
                                        checkpoint_dir=tmp_path / "ck")
        first.process_frames(campus_frames[:k])
        first.save_checkpoint()
        first.terminate()  # simulated hard death of the whole process

        resumed = ParallelShardedPipeline.restore(
            tmp_path / "ck", bank_dir, num_workers=2)
        try:
            resumed.reload_bank(retrained_bank_dir)
            resumed.process_frames(campus_frames[k:])
            resumed.flush()
            assert resumed.counters == oracle.counters
            assert list(resumed.telemetry) == list(oracle.telemetry)
        finally:
            resumed.close()

    @pytest.mark.parametrize("before,after", ((2, 4), (4, 2), (2, 1)))
    def test_restore_into_different_worker_count(
            self, bank, bank_dir, campus_frames, tmp_path, before,
            after):
        """Re-sharding a checkpoint keeps the merged views exact:
        counters, the record multiset, and every continued flow."""
        k = len(campus_frames) // 2
        oracle = RealtimePipeline(bank, batch_size=8)
        oracle.process_frames(campus_frames[:k])
        oracle.save_checkpoint(tmp_path / "rt-ck")
        oracle.process_frames(campus_frames[k:])
        oracle.flush()

        first = ShardedPipeline(bank, num_shards=before, batch_size=8)
        first.process_frames(campus_frames[:k])
        first.save_checkpoint(tmp_path / "ck")

        resumed = ShardedPipeline.restore(tmp_path / "ck", bank,
                                          num_shards=after)
        assert resumed.num_shards == after
        resumed.process_frames(campus_frames[k:])
        resumed.flush()
        assert resumed.counters == oracle.counters
        assert sorted((str(r.key), r.start_time, r.prediction)
                      for r in resumed.telemetry) == \
            sorted((str(r.key), r.start_time, r.prediction)
                   for r in oracle.store)

        par = ParallelShardedPipeline.restore(
            tmp_path / "ck", bank_dir, num_workers=after)
        try:
            par.process_frames(campus_frames[k:])
            par.flush()
            assert par.counters == oracle.counters
            assert sorted((str(r.key), r.start_time, r.prediction)
                          for r in par.telemetry) == \
                sorted((str(r.key), r.start_time, r.prediction)
                       for r in oracle.store)
        finally:
            par.close()


class TestCheckpointCLI:
    def test_classify_checkpoint_then_resume(self, bank_dir, campus_pcap,
                                             tmp_path, capsys):
        from repro.cli import main

        span_args = ["--checkpoint-interval", "2000"]
        assert main(["classify", "--bank", str(bank_dir),
                     "--pcap", str(campus_pcap),
                     "--checkpoint-dir", str(tmp_path / "ck"),
                     *span_args]) == 0
        first = capsys.readouterr().out
        assert checkpoint_kind(tmp_path / "ck") == "realtime"
        position = load_ingest_position(tmp_path / "ck")
        assert position.consumed > 0
        # Resuming the *finished* run replays only the tail after the
        # last checkpoint and prints the same classified totals.
        assert main(["classify", "--bank", str(bank_dir),
                     "--pcap", str(campus_pcap),
                     "--resume", str(tmp_path / "ck"),
                     *span_args]) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[-1] == second.splitlines()[-1]

    def test_campus_workers_checkpoint_resume(self, bank_dir,
                                              campus_pcap, tmp_path,
                                              capsys):
        from repro.cli import main

        args = ["campus", "--bank", str(bank_dir),
                "--pcap", str(campus_pcap), "--workers", "2",
                "--checkpoint-interval", "2000"]
        assert main([*args, "--checkpoint-dir",
                     str(tmp_path / "ck")]) == 0
        first = capsys.readouterr().out
        assert main([*args, "--resume", str(tmp_path / "ck")]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_resume_inherits_checkpointed_retention(self, bank_dir,
                                                    campus_pcap,
                                                    tmp_path, capsys):
        """--resume without restating --retention/--batch-size picks
        up the checkpointed values instead of failing on the argparse
        defaults."""
        from repro.cli import main

        assert main(["campus", "--bank", str(bank_dir),
                     "--pcap", str(campus_pcap),
                     "--retention", "both", "--batch-size", "16",
                     "--checkpoint-dir", str(tmp_path / "ck"),
                     "--checkpoint-interval", "2000"]) == 0
        first = capsys.readouterr().out
        assert main(["campus", "--bank", str(bank_dir),
                     "--pcap", str(campus_pcap),
                     "--resume", str(tmp_path / "ck")]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_resume_nonexistent_dir_fails_cleanly(self, bank_dir,
                                                  campus_pcap,
                                                  tmp_path):
        from repro.cli import main

        with pytest.raises(ConfigError):
            main(["classify", "--bank", str(bank_dir),
                  "--pcap", str(campus_pcap),
                  "--resume", str(tmp_path / "missing")])
