"""AES-GCM tests against the McGrew–Viega / NIST reference vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import AESGCM, gf_mult
from repro.crypto.gcm import _GHash
from repro.errors import CryptoError


class TestGcmVectors:
    def test_case_1_empty(self):
        aead = AESGCM(bytes(16))
        out = aead.encrypt(bytes(12), b"", b"")
        assert out.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_case_2_single_zero_block(self):
        aead = AESGCM(bytes(16))
        out = aead.encrypt(bytes(12), bytes(16), b"")
        assert out[:16].hex() == "0388dace60b6a392f328c2b971b2fe78"
        assert out[16:].hex() == "ab6e47d42cec13bdf53a67b21257bddf"

    def test_case_3_four_blocks(self):
        key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
        iv = bytes.fromhex("cafebabefacedbaddecaf888")
        plaintext = bytes.fromhex(
            "d9313225f88406e5a55909c5aff5269a"
            "86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525"
            "b16aedf5aa0de657ba637b391aafd255"
        )
        expected_ct = bytes.fromhex(
            "42831ec2217774244b7221b784d0d49c"
            "e3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa05"
            "1ba30b396a0aac973d58e091473f5985"
        )
        out = AESGCM(key).encrypt(iv, plaintext, b"")
        assert out[:-16] == expected_ct
        assert out[-16:].hex() == "4d5c2af327cd64a62cf35abd2ba6fab4"

    def test_case_4_with_aad(self):
        key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
        iv = bytes.fromhex("cafebabefacedbaddecaf888")
        plaintext = bytes.fromhex(
            "d9313225f88406e5a55909c5aff5269a"
            "86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525"
            "b16aedf5aa0de657ba637b39"
        )
        aad = bytes.fromhex(
            "feedfacedeadbeeffeedfacedeadbeefabaddad2"
        )
        out = AESGCM(key).encrypt(iv, plaintext, aad)
        expected_ct = bytes.fromhex(
            "42831ec2217774244b7221b784d0d49c"
            "e3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa05"
            "1ba30b396a0aac973d58e091"
        )
        assert out[:-16] == expected_ct
        assert out[-16:].hex() == "5bc94fbc3221a5db94fae95ae7121a47"

    def test_case_5_short_iv(self):
        # 64-bit IV exercises the GHASH-derived J0 path.
        key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
        iv = bytes.fromhex("cafebabefacedbad")
        plaintext = bytes.fromhex(
            "d9313225f88406e5a55909c5aff5269a"
            "86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525"
            "b16aedf5aa0de657ba637b39"
        )
        aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
        out = AESGCM(key).encrypt(iv, plaintext, aad)
        assert out[-16:].hex() == "3612d2e79e3b0785561be14aaca2fccb"


class TestGcmBehaviour:
    def test_decrypt_roundtrip(self):
        aead = AESGCM(bytes.fromhex("feffe9928665731c6d6a8f9467308308"))
        nonce = bytes(12)
        message = b"QUIC Initial packets hide the ClientHello"
        box = aead.encrypt(nonce, message, b"header")
        assert aead.decrypt(nonce, box, b"header") == message

    def test_tag_mismatch_rejected(self):
        aead = AESGCM(bytes(16))
        box = bytearray(aead.encrypt(bytes(12), b"payload", b""))
        box[-1] ^= 0x01
        with pytest.raises(CryptoError):
            aead.decrypt(bytes(12), bytes(box), b"")

    def test_aad_mismatch_rejected(self):
        aead = AESGCM(bytes(16))
        box = aead.encrypt(bytes(12), b"payload", b"aad-one")
        with pytest.raises(CryptoError):
            aead.decrypt(bytes(12), box, b"aad-two")

    def test_truncated_ciphertext_rejected(self):
        aead = AESGCM(bytes(16))
        with pytest.raises(CryptoError):
            aead.decrypt(bytes(12), b"\x00" * 8, b"")


class TestGhashInternals:
    def test_table_mult_matches_reference(self):
        h = int("66e94bd4ef8a2c3b884cfa59ca342b2e", 16)
        ghash = _GHash(h)
        for v in (0, 1, 0xDEADBEEF << 96, (1 << 128) - 1,
                  0x0123456789ABCDEF0123456789ABCDEF):
            assert ghash._mult_h(v) == gf_mult(v, h)

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1),
           st.integers(min_value=1, max_value=(1 << 128) - 1))
    def test_gf_mult_commutative(self, a, b):
        assert gf_mult(a, b) == gf_mult(b, a)

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_gf_mult_identity(self, a):
        one = 1 << 127  # the element "1" has x^0 coefficient set (MSB)
        assert gf_mult(a, one) == a

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1),
           st.integers(min_value=0, max_value=(1 << 128) - 1),
           st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_gf_mult_distributive(self, a, b, c):
        assert gf_mult(a ^ b, c) == gf_mult(a, c) ^ gf_mult(b, c)


class TestGcmProperties:
    @given(key=st.binary(min_size=16, max_size=16),
           nonce=st.binary(min_size=12, max_size=12),
           plaintext=st.binary(max_size=200),
           aad=st.binary(max_size=64))
    def test_roundtrip(self, key, nonce, plaintext, aad):
        aead = AESGCM(key)
        assert aead.decrypt(nonce, aead.encrypt(nonce, plaintext, aad),
                            aad) == plaintext

    @given(plaintext=st.binary(max_size=96))
    def test_ciphertext_length(self, plaintext):
        aead = AESGCM(bytes(16))
        out = aead.encrypt(bytes(12), plaintext, b"")
        assert len(out) == len(plaintext) + 16
