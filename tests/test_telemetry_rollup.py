"""Rollup engine equivalence suite.

The contract (docs/ARCHITECTURE.md, "Telemetry rollup engine"):

* shard-wise rollup merge ≡ one rollup over the concatenated stream,
  **exactly**, in any merge order — integer counters, exact float sums
  (Shewchuk partials), min/max times, session sets, hourly spreads;
* rollup-backed Figs 7–11 queries match the full-scan oracle in
  ``repro.analysis`` — exact for integer counts/ratios, equal to
  within float-summation reordering (rel 1e-9) for float sums, and
  rank-error-bounded for sketch quantiles;
* snapshot → restore round-trips byte-stably (identical rollup.json,
  identical npz arrays) and reproduces identical query answers.

The ``perf``-marked test at the bottom pins the reason the subsystem
exists: ingest-plus-query through rollups must not regress below raw
append plus full-scan queries once queries repeat.
"""

import bisect
import time
import zlib

import numpy as np
import pytest

from repro.analysis import (
    bandwidth_by_agent,
    bandwidth_by_device,
    excluded_share,
    hourly_usage_gb,
    median_mbps,
    mobile_share,
    total_watch_hours,
    watch_time_by_agent,
    watch_time_by_device,
)
from repro.analysis.filtering import reliable_records
from repro.fingerprints import Provider
from repro.ml import RandomForestClassifier
from repro.pipeline import (
    ClassifierBank,
    RealtimePipeline,
    ShardedPipeline,
    TelemetryStore,
)
from repro.telemetry import (
    ExactSum,
    GKQuantileSketch,
    RollupConfig,
    RollupCube,
    load_rollup,
    save_rollup,
)
from repro.telemetry import queries as rq
from repro.telemetry.simulate import synthesize_records
from repro.trafficgen import CampusConfig, CampusWorkload, generate_lab_dataset

APPROX = dict(rel=1e-9, abs=1e-12)


def _additive_state(cube):
    """Everything in a cube except the sketches, hashable-comparable."""
    return {
        key: (cell.flows, cell.bytes_down, cell.bytes_up,
              cell.watch_seconds.value, cell.min_start, cell.max_end,
              tuple(sorted(cell.sessions)),
              None if cell.hourly_bytes is None
              else tuple(acc.value for acc in cell.hourly_bytes))
        for key, cell in cube.items()
    }


def _assert_rank_bounded(estimate, sorted_values, phi, eps):
    """``estimate`` sits within ±eps·n ranks of the phi-quantile."""
    n = len(sorted_values)
    lo = bisect.bisect_left(sorted_values, estimate)
    hi = bisect.bisect_right(sorted_values, estimate)
    target = phi * n
    if lo <= target <= hi:
        return
    err = min(abs(lo - target), abs(hi - target))
    assert err <= eps * n + 2, (
        f"phi={phi}: estimate {estimate} is {err:.1f} ranks off "
        f"(allowed {eps * n + 2:.1f} of n={n})")


class TestExactSum:
    def test_matches_fsum_and_ignores_order(self):
        import math

        values = [1e16, 1.0, -1e16, 1e-8, 3.14, -2.5e15, 7.0] * 13
        forward = ExactSum()
        for v in values:
            forward.add(v)
        backward = ExactSum()
        for v in reversed(values):
            backward.add(v)
        assert forward.value == backward.value == math.fsum(values)

    def test_merge_equals_concatenation(self):
        import math

        rng = np.random.default_rng(5)
        chunks = [rng.normal(scale=10.0 ** e, size=50).tolist()
                  for e in (0, 8, -6, 16)]
        merged = ExactSum()
        for chunk in chunks:
            part = ExactSum()
            for v in chunk:
                part.add(v)
            merged.merge(part)
        flat = ExactSum()
        for v in [v for chunk in chunks for v in chunk]:
            flat.add(v)
        assert merged.value == flat.value == \
            math.fsum(v for chunk in chunks for v in chunk)

    def test_partials_round_trip(self):
        acc = ExactSum()
        for v in (1e16, 1.0, -1.0, 2.5):
            acc.add(v)
        clone = ExactSum(acc.partials)
        assert clone.value == acc.value


class TestGKSketch:
    @pytest.mark.parametrize("dist", ["uniform", "lognormal"])
    def test_rank_error_bounded_with_compression(self, dist):
        rng = np.random.default_rng(17)
        n = 5000
        values = (rng.uniform(0, 100, n) if dist == "uniform"
                  else rng.lognormal(1.0, 0.6, n))
        sketch = GKQuantileSketch(epsilon=0.02)
        for v in values:
            sketch.add(v)
        # Compression must actually engage — that's what the bound
        # protects; an uncompressed sketch is exact by construction.
        assert sketch.sample_count < n / 4
        ordered = sorted(values)
        for phi in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            _assert_rank_bounded(sketch.quantile(phi), ordered, phi, 0.02)

    def test_merge_rank_error_bounded(self):
        rng = np.random.default_rng(23)
        parts = [rng.lognormal(0.8, 0.5, 1500) for _ in range(4)]
        merged = GKQuantileSketch(epsilon=0.02)
        for part in parts:
            sketch = GKQuantileSketch(epsilon=0.02)
            for v in part:
                sketch.add(v)
            merged.merge(sketch)
        ordered = sorted(np.concatenate(parts))
        assert len(merged) == len(ordered)
        for phi in (0.25, 0.5, 0.75):
            # Widen-then-compress merging stays within ~2x the single
            # stream bound in the worst case.
            _assert_rank_bounded(merged.quantile(phi), ordered, phi, 0.04)

    def test_exact_when_small(self):
        sketch = GKQuantileSketch(epsilon=0.05)
        for v in (5.0, 1.0, 3.0):
            sketch.add(v)
        assert sketch.quantile(0.5) == 3.0
        assert len(sketch) == 3

    def test_empty_quantile_is_zero(self):
        assert GKQuantileSketch().quantile(0.5) == 0.0


class TestRollupMerge:
    @pytest.fixture(scope="class")
    def records(self):
        return synthesize_records(4000, seed=11, days=2.0)

    @pytest.mark.parametrize("bucket_seconds", [3600.0, 86400.0])
    def test_shard_merge_equals_single_stream_exactly(self, records,
                                                      bucket_seconds):
        config = RollupConfig(bucket_seconds=bucket_seconds)
        single = RollupCube(config)
        single.ingest_many(records)
        shards = [RollupCube(config) for _ in range(4)]
        for record in records:
            index = zlib.crc32(str(record.key).encode()) % 4
            shards[index].ingest(record)
        reference = _additive_state(single)
        for order in ([0, 1, 2, 3], [3, 1, 0, 2], [2, 3, 1, 0]):
            merged = RollupCube(config)
            for i in order:
                merged.merge_from(shards[i])
            assert _additive_state(merged) == reference, order

    def test_merged_sketches_stay_rank_bounded(self, records):
        config = RollupConfig(bucket_seconds=3600.0)
        shards = [RollupCube(config) for _ in range(4)]
        for i, record in enumerate(records):
            shards[i % 4].ingest(record)
        merged = RollupCube(config)
        for shard in shards:
            merged.merge_from(shard)
        store = TelemetryStore()
        store.extend(records)
        stats = rq.bandwidth_by_device(merged)
        for provider in stats:
            for device, box in stats[provider].items():
                ordered = sorted(
                    r.mean_mbps for r in reliable_records(store)
                    if r.provider is provider
                    and r.device_label == device)
                for name, phi in (("q1", 0.25), ("median", 0.5),
                                  ("q3", 0.75)):
                    _assert_rank_bounded(box[name], ordered, phi, 0.05)

    def test_merge_rejects_mismatched_configs(self):
        a = RollupCube(RollupConfig(bucket_seconds=3600.0))
        b = RollupCube(RollupConfig(bucket_seconds=86400.0))
        with pytest.raises(ValueError):
            a.merge_from(b)


class TestQueryEquivalence:
    """Rollup-backed Figs 7–11 vs the full-scan oracle."""

    @pytest.fixture(scope="class")
    def corpus(self):
        records = synthesize_records(5000, seed=3, days=3.0)
        store = TelemetryStore()
        store.extend(records)
        cube = RollupCube(RollupConfig(bucket_seconds=3600.0))
        cube.ingest_many(records)
        return store, cube

    def test_watch_time_by_device(self, corpus):
        store, cube = corpus
        oracle, rollup = watch_time_by_device(store), \
            rq.watch_time_by_device(cube)
        assert set(oracle) == set(rollup)
        for provider in oracle:
            assert set(oracle[provider]) == set(rollup[provider])
            for device, hours in oracle[provider].items():
                assert rollup[provider][device] == \
                    pytest.approx(hours, **APPROX)

    def test_watch_time_by_agent(self, corpus):
        store, cube = corpus
        oracle, rollup = watch_time_by_agent(store), \
            rq.watch_time_by_agent(cube)
        assert set(oracle) == set(rollup)
        for provider in oracle:
            for pair, hours in oracle[provider].items():
                assert rollup[provider][pair] == \
                    pytest.approx(hours, **APPROX)

    def test_total_and_mobile_and_excluded(self, corpus):
        store, cube = corpus
        assert rq.total_watch_hours(cube) == \
            pytest.approx(total_watch_hours(store), **APPROX)
        # Ratios of integer counters are exact, not approximate.
        assert rq.excluded_share(cube) == excluded_share(store)
        assert rq.classified_share(cube) == store.classified_share()
        for provider in Provider:
            assert rq.mobile_share(cube, provider) == \
                pytest.approx(mobile_share(store, provider), **APPROX)

    def test_hourly_usage(self, corpus):
        store, cube = corpus
        oracle, rollup = hourly_usage_gb(store), rq.hourly_usage_gb(cube)
        assert set(oracle) == set(rollup)
        for provider in oracle:
            assert set(oracle[provider]) == set(rollup[provider])
            for device_class, series in oracle[provider].items():
                assert rollup[provider][device_class] == \
                    pytest.approx(series, **APPROX)

    @pytest.mark.parametrize("by", ["device", "agent"])
    def test_bandwidth_rank_bounded(self, corpus, by):
        store, cube = corpus
        if by == "device":
            oracle, rollup = bandwidth_by_device(store), \
                rq.bandwidth_by_device(cube)
            key_of = lambda r: r.device_label  # noqa: E731
        else:
            oracle, rollup = bandwidth_by_agent(store), \
                rq.bandwidth_by_agent(cube)
            key_of = lambda r: (r.device_label, r.agent_label)  # noqa: E731
        assert set(oracle) == set(rollup)
        for provider in oracle:
            assert set(oracle[provider]) == set(rollup[provider])
            for cell_key in oracle[provider]:
                ordered = sorted(
                    r.mean_mbps for r in reliable_records(store)
                    if r.provider is provider and key_of(r) == cell_key)
                box = rollup[provider][cell_key]
                for name, phi in (("q1", 0.25), ("median", 0.5),
                                  ("q3", 0.75)):
                    _assert_rank_bounded(box[name], ordered, phi, 0.05)

    def test_median_mbps_single_cell(self, corpus):
        store, cube = corpus
        for provider in (Provider.YOUTUBE, Provider.AMAZON):
            for device in ("windows", "iOS"):
                ordered = sorted(
                    r.mean_mbps for r in reliable_records(store)
                    if r.provider is provider
                    and r.device_label == device)
                estimate = rq.median_mbps(cube, provider, device)
                _assert_rank_bounded(estimate, ordered, 0.5, 0.05)
                # And the full-scan fast path agrees with its own
                # Fig 9 cube (the satellite fix kept semantics).
                assert median_mbps(store, provider, device) == \
                    bandwidth_by_device(store)[provider][device]["median"]
        assert rq.median_mbps(cube, Provider.NETFLIX, "toaster") == 0.0
        assert median_mbps(store, Provider.NETFLIX, "toaster") == 0.0

    def test_distinct_sessions(self, corpus):
        store, cube = corpus
        assert rq.distinct_sessions(cube) == store.distinct_sessions()
        assert rq.distinct_sessions(cube, role="content") == \
            store.distinct_sessions(role="content")

    def test_empty_cube(self):
        cube = RollupCube()
        assert rq.watch_time_by_device(cube) == {}
        assert rq.bandwidth_by_device(cube) == {}
        assert rq.hourly_usage_gb(cube) == {}
        assert rq.excluded_share(cube) == 0.0
        assert rq.total_watch_hours(cube) == 0.0
        assert rq.mobile_share(cube, Provider.YOUTUBE) == 0.0
        assert rq.distinct_sessions(cube) == 0


class TestSnapshot:
    def test_round_trip_byte_stable(self, tmp_path):
        records = synthesize_records(1500, seed=29, days=2.0)
        cube = RollupCube(RollupConfig(bucket_seconds=3600.0))
        cube.ingest_many(records)
        first, second = tmp_path / "r1", tmp_path / "r2"
        save_rollup(cube, first)
        restored = load_rollup(first)
        save_rollup(restored, second)
        assert (first / "rollup.json").read_bytes() == \
            (second / "rollup.json").read_bytes()
        with np.load(first / "rollup.npz") as a, \
                np.load(second / "rollup.npz") as b:
            assert sorted(a.files) == sorted(b.files)
            for name in a.files:
                assert np.array_equal(a[name], b[name]), name

    def test_restored_cube_answers_identically(self, tmp_path):
        records = synthesize_records(1500, seed=31, days=2.0)
        cube = RollupCube(RollupConfig(bucket_seconds=86400.0,
                                       epsilon=0.02))
        cube.ingest_many(records)
        save_rollup(cube, tmp_path / "snap")
        restored = load_rollup(tmp_path / "snap")
        assert restored.config == cube.config
        assert _additive_state(restored) == _additive_state(cube)
        assert rq.watch_time_by_device(restored) == \
            rq.watch_time_by_device(cube)
        assert rq.bandwidth_by_device(restored) == \
            rq.bandwidth_by_device(cube)
        assert rq.hourly_usage_gb(restored) == rq.hourly_usage_gb(cube)
        assert rq.distinct_sessions(restored) == \
            rq.distinct_sessions(cube)

    def test_missing_snapshot_fails_cleanly(self, tmp_path):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            load_rollup(tmp_path / "nope")


@pytest.fixture(scope="module")
def small_bank():
    lab = generate_lab_dataset(seed=33, scale=0.05)
    return ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=5, max_depth=12, random_state=1))


def _campus_flows():
    workload = CampusWorkload(CampusConfig(days=1, sessions_per_day=50,
                                           seed=5))
    return workload.flows()


class TestPipelineRetention:
    def test_retention_modes(self, small_bank):
        raw = RealtimePipeline(small_bank, retention="raw")
        raw.process_flows(_campus_flows())
        both = RealtimePipeline(small_bank, retention="both")
        both.process_flows(_campus_flows())
        rollup_only = RealtimePipeline(small_bank, retention="rollup")
        rollup_only.process_flows(_campus_flows())

        assert raw.rollup is None
        assert len(raw.store) > 0
        assert list(both.store) == list(raw.store)
        # Bounded memory: no raw records retained, nothing else lost.
        assert len(rollup_only.store) == 0
        assert raw.counters == both.counters == rollup_only.counters
        assert _additive_state(rollup_only.rollup) == \
            _additive_state(both.rollup)
        # The cube carries the threaded trafficgen session ids.
        assert rq.distinct_sessions(both.rollup) == \
            both.store.distinct_sessions() > 0

    def test_rollup_queries_match_store_oracle(self, small_bank):
        pipeline = RealtimePipeline(small_bank, retention="both")
        pipeline.process_flows(_campus_flows())
        store, cube = pipeline.store, pipeline.rollup
        assert rq.excluded_share(cube) == excluded_share(store)
        oracle = watch_time_by_device(store)
        rollup = rq.watch_time_by_device(cube)
        assert set(oracle) == set(rollup)
        for provider in oracle:
            for device, hours in oracle[provider].items():
                assert rollup[provider][device] == \
                    pytest.approx(hours, **APPROX)

    def test_sharded_rollup_merge_is_exact(self, small_bank):
        unsharded = RealtimePipeline(small_bank, retention="rollup")
        unsharded.process_flows(_campus_flows())
        sharded = ShardedPipeline(small_bank, num_shards=4,
                                  batch_size=16, retention="rollup")
        sharded.process_flows(_campus_flows())
        assert _additive_state(sharded.rollup) == \
            _additive_state(unsharded.rollup)
        assert sharded.counters == unsharded.counters

    def test_invalid_retention_rejected(self, small_bank):
        with pytest.raises(ValueError):
            RealtimePipeline(small_bank, retention="postgres")


@pytest.mark.perf
def test_rollup_ingest_and_query_not_slower_than_full_scan():
    """The reason the subsystem exists: once an operator dashboard
    queries repeatedly, rollup ingest + O(cells) queries must beat raw
    append + O(flows) full scans. Guarded here (and in CI's perf job)
    so the rollup ingest path never rots below the full-scan baseline.
    """
    records = synthesize_records(20_000, seed=41, days=3.0)
    query_rounds = 10

    def run_full_scan():
        start = time.perf_counter()
        store = TelemetryStore()
        for record in records:
            store.add(record)
        for _ in range(query_rounds):
            watch_time_by_device(store)
            bandwidth_by_device(store)
            hourly_usage_gb(store)
            excluded_share(store)
        return time.perf_counter() - start

    def run_rollup():
        start = time.perf_counter()
        cube = RollupCube(RollupConfig(bucket_seconds=86400.0))
        for record in records:
            cube.ingest(record)
        for _ in range(query_rounds):
            rq.watch_time_by_device(cube)
            rq.bandwidth_by_device(cube)
            rq.hourly_usage_gb(cube)
            rq.excluded_share(cube)
        return time.perf_counter() - start

    t_scan = min(run_full_scan() for _ in range(2))
    t_rollup = min(run_rollup() for _ in range(2))
    assert t_rollup <= t_scan, (
        f"rollup ingest+query path slower than full scan: "
        f"{t_rollup:.3f}s vs {t_scan:.3f}s over {len(records)} records "
        f"x {query_rounds} query rounds")
