"""Tests for whole-packet composition and the pcap file format."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.net import (
    FlowKey,
    Packet,
    PcapReader,
    PcapWriter,
    TCPHeader,
    make_tcp_packet,
    make_udp_packet,
    read_pcap,
    write_pcap,
)


def _sample_tcp_packet(ts=1.5) -> Packet:
    tcp = TCPHeader(src_port=51000, dst_port=443, flag_syn=True)
    return make_tcp_packet("10.0.0.5", "142.250.70.78", tcp,
                           ttl=128, timestamp=ts)


def _sample_udp_packet(ts=2.25) -> Packet:
    return make_udp_packet("10.0.0.6", "172.217.0.1", 50001, 443,
                           payload=b"\x00" * 64, ttl=64, timestamp=ts)


class TestPacket:
    def test_tcp_roundtrip(self):
        packet = _sample_tcp_packet()
        parsed = Packet.from_bytes(packet.to_bytes(), timestamp=1.5)
        assert parsed.is_tcp
        assert parsed.ip.src == "10.0.0.5"
        assert parsed.ip.ttl == 128
        assert parsed.tcp.flag_syn
        assert parsed.flow_key == FlowKey(6, "10.0.0.5", 51000,
                                          "142.250.70.78", 443)

    def test_udp_roundtrip(self):
        packet = _sample_udp_packet()
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.is_udp
        assert parsed.payload == b"\x00" * 64
        assert parsed.src_port == 50001

    def test_must_have_one_l4(self):
        with pytest.raises(ParseError):
            Packet(ip=_sample_tcp_packet().ip)

    def test_rejects_non_ipv4_ethertype(self):
        raw = bytearray(_sample_tcp_packet().to_bytes())
        raw[12:14] = (0x86DD).to_bytes(2, "big")  # IPv6
        with pytest.raises(ParseError):
            Packet.from_bytes(bytes(raw))

    def test_rejects_truncated_capture(self):
        raw = _sample_tcp_packet().to_bytes()
        with pytest.raises(ParseError):
            Packet.from_bytes(raw[:-5])

    @given(payload=st.binary(max_size=512),
           ttl=st.integers(min_value=1, max_value=255))
    def test_payload_roundtrip_property(self, payload, ttl):
        tcp = TCPHeader(src_port=1234, dst_port=443, flag_ack=True)
        packet = make_tcp_packet("10.1.2.3", "8.8.8.8", tcp,
                                 payload=payload, ttl=ttl)
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.payload == payload
        assert parsed.ip.ttl == ttl


class TestFlowKey:
    def test_canonical_direction_independent(self):
        key = FlowKey(6, "10.0.0.5", 51000, "142.250.70.78", 443)
        assert key.canonical() == key.reversed().canonical()

    def test_str_format(self):
        key = FlowKey(17, "1.2.3.4", 1000, "5.6.7.8", 443)
        assert str(key) == "udp:1.2.3.4:1000->5.6.7.8:443"


class TestPcap:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "sample.pcap"
        packets = [_sample_tcp_packet(1.0), _sample_udp_packet(2.5),
                   _sample_tcp_packet(3.000001)]
        assert write_pcap(path, packets) == 3
        loaded = read_pcap(path)
        assert len(loaded) == 3
        assert [round(p.timestamp, 6) for p in loaded] == \
            [1.0, 2.5, 3.000001]
        assert loaded[0].is_tcp and loaded[1].is_udp
        assert loaded[0].to_bytes() == packets[0].to_bytes()

    def test_reads_big_endian_files(self, tmp_path):
        path = tmp_path / "be.pcap"
        frame = _sample_tcp_packet().to_bytes()
        with open(path, "wb") as f:
            f.write(struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0,
                                65535, 1))
            f.write(struct.pack(">IIII", 10, 500000, len(frame),
                                len(frame)))
            f.write(frame)
        with PcapReader(path) as reader:
            records = list(reader)
        assert len(records) == 1
        assert records[0].timestamp == pytest.approx(10.5)

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(ParseError):
            PcapReader(path)

    def test_rejects_truncated_record(self, tmp_path):
        path = tmp_path / "trunc.pcap"
        with PcapWriter(path) as writer:
            writer.write_bytes(b"\xAB" * 60, 1.0)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with PcapReader(path) as reader:
            with pytest.raises(ParseError):
                list(reader)

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "cm.pcap"
        with PcapWriter(path) as writer:
            writer.write_packet(_sample_tcp_packet())
        # File must be complete and re-readable after close.
        assert len(read_pcap(path)) == 1
