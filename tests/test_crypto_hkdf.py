"""HKDF tests against RFC 5869 vectors and RFC 9001 Appendix A."""

import pytest

from repro.crypto import hkdf_expand, hkdf_expand_label, hkdf_extract
from repro.errors import CryptoError


class TestRfc5869:
    def test_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba63"
            "90b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_case_3_empty_salt_info(self):
        ikm = bytes.fromhex("0b" * 22)
        prk = hkdf_extract(b"", ikm)
        assert prk.hex() == (
            "19ef24a32c717b167f33a91d6f648bdf"
            "96596776afdb6377ac434c1c293ccb04"
        )
        okm = hkdf_expand(prk, b"", 42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_expand_rejects_oversized_output(self):
        with pytest.raises(CryptoError):
            hkdf_expand(bytes(32), b"", 255 * 32 + 1)


class TestQuicInitialSecrets:
    """RFC 9001 Appendix A.1 key derivation for DCID 8394c8f03e515708."""

    INITIAL_SALT = bytes.fromhex("38762cf7f55934b34d179ae6a4c80cadccbb7f0a")
    DCID = bytes.fromhex("8394c8f03e515708")

    def test_initial_secret(self):
        secret = hkdf_extract(self.INITIAL_SALT, self.DCID)
        assert secret.hex() == (
            "7db5df06e7a69e432496adedb0085192"
            "3595221596ae2ae9fb8115c1e9ed0a44"
        )

    def test_client_initial_keys(self):
        initial_secret = hkdf_extract(self.INITIAL_SALT, self.DCID)
        client_secret = hkdf_expand_label(
            initial_secret, "client in", b"", 32
        )
        assert client_secret.hex() == (
            "c00cf151ca5be075ed0ebfb5c80323c4"
            "2d6b7db67881289af4008f1f6c357aea"
        )
        key = hkdf_expand_label(client_secret, "quic key", b"", 16)
        iv = hkdf_expand_label(client_secret, "quic iv", b"", 12)
        hp = hkdf_expand_label(client_secret, "quic hp", b"", 16)
        assert key.hex() == "1f369613dd76d5467730efcbe3b1a22d"
        assert iv.hex() == "fa044b2f42a3fd3b46fb255c"
        assert hp.hex() == "9f50449e04a0e810283a1e9933adedd2"

    def test_server_initial_keys(self):
        initial_secret = hkdf_extract(self.INITIAL_SALT, self.DCID)
        server_secret = hkdf_expand_label(
            initial_secret, "server in", b"", 32
        )
        key = hkdf_expand_label(server_secret, "quic key", b"", 16)
        iv = hkdf_expand_label(server_secret, "quic iv", b"", 12)
        hp = hkdf_expand_label(server_secret, "quic hp", b"", 16)
        assert key.hex() == "cf3a5331653c364c88f0f379b6067e37"
        assert iv.hex() == "0ac1493ca1905853b0bba03e"
        assert hp.hex() == "c206b8d9b9f0f37644430b490eeaa314"

    def test_expand_label_rejects_long_label(self):
        with pytest.raises(CryptoError):
            hkdf_expand_label(bytes(32), "x" * 300, b"", 16)
