"""Tests for the extension features: concept-drift monitoring (§5.3),
JA3 fingerprinting, and classifier-bank persistence."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fingerprints import Provider, Transport, UserPlatform, get_profile
from repro.ml import RandomForestClassifier
from repro.pipeline import ClassifierBank
from repro.pipeline.confidence import PlatformPrediction
from repro.pipeline.driftwatch import (
    ConceptDriftMonitor,
    DriftReport,
    PageHinkley,
)
from repro.pipeline.persist import load_bank, save_bank
from repro.tls.ja3 import ja3, ja3_string
from repro.trafficgen import generate_lab_dataset


def _prediction(confidence: float) -> PlatformPrediction:
    status = "classified" if confidence >= 0.8 else "unknown"
    return PlatformPrediction(
        status=status,
        platform="windows_chrome" if status == "classified" else None,
        device="windows" if status == "classified" else None,
        agent="chrome" if status == "classified" else None,
        confidence=confidence, device_confidence=confidence,
        agent_confidence=confidence)


class TestPageHinkley:
    def test_no_alarm_on_stationary_stream(self):
        ph = PageHinkley(delta=0.02, threshold=2.0)
        rng = np.random.default_rng(0)
        for _ in range(2000):
            assert not ph.update(0.1 + rng.normal(0, 0.02))

    def test_alarm_on_shift(self):
        ph = PageHinkley(delta=0.02, threshold=2.0)
        rng = np.random.default_rng(1)
        for _ in range(500):
            ph.update(0.1 + rng.normal(0, 0.02))
        fired = False
        for _ in range(500):
            fired = ph.update(0.35 + rng.normal(0, 0.02)) or fired
        assert fired

    def test_reset(self):
        ph = PageHinkley()
        for _ in range(300):
            ph.update(1.0)
        ph.reset()
        assert not ph.alarmed


class TestConceptDriftMonitor:
    def _calibrated(self) -> ConceptDriftMonitor:
        monitor = ConceptDriftMonitor(confidence_drop_threshold=0.08,
                                      min_observations=50)
        reference = [_prediction(0.93) for _ in range(100)]
        monitor.calibrate(Provider.YOUTUBE, Transport.QUIC, reference)
        return monitor

    def test_no_drift_on_healthy_stream(self):
        monitor = self._calibrated()
        rng = np.random.default_rng(2)
        for _ in range(400):
            conf = min(1.0, max(0.5, 0.93 + rng.normal(0, 0.03)))
            monitor.observe(Provider.YOUTUBE, Transport.QUIC,
                            _prediction(conf))
        report = monitor.report(Provider.YOUTUBE, Transport.QUIC)
        assert not report.drifting
        assert report.rolling_confidence > 0.85

    def test_drift_detected_on_decayed_stream(self):
        monitor = self._calibrated()
        rng = np.random.default_rng(3)
        for _ in range(400):
            conf = min(1.0, max(0.2, 0.70 + rng.normal(0, 0.05)))
            monitor.observe(Provider.YOUTUBE, Transport.QUIC,
                            _prediction(conf))
        report = monitor.report(Provider.YOUTUBE, Transport.QUIC)
        assert report.drifting
        assert report.confidence_drop > 0.08
        assert (Provider.YOUTUBE, Transport.QUIC) in \
            monitor.scenarios_needing_retraining()

    def test_min_observations_gate(self):
        monitor = self._calibrated()
        for _ in range(10):
            monitor.observe(Provider.YOUTUBE, Transport.QUIC,
                            _prediction(0.3))
        assert not monitor.report(Provider.YOUTUBE,
                                  Transport.QUIC).drifting

    def test_report_alarm_is_raw_detector_state(self):
        # The min_observations gate applies to the retraining verdict
        # only: an alarmed-but-young scenario must still report
        # page_hinkley_alarm=True, or the operator cannot reconcile
        # the report with the on_alarm transition that already fired.
        fired = []
        monitor = ConceptDriftMonitor(
            min_observations=50,
            on_alarm=lambda p, t: fired.append((p, t)))
        monitor.calibrate(Provider.YOUTUBE, Transport.QUIC,
                          [_prediction(0.93) for _ in range(100)])
        # 10 healthy flows establish the running mean, then the
        # confidence collapses: the detector alarms well before the
        # 50-observation retraining gate opens.
        for _ in range(10):
            monitor.observe(Provider.YOUTUBE, Transport.QUIC,
                            _prediction(0.93))
        for _ in range(30):
            monitor.observe(Provider.YOUTUBE, Transport.QUIC,
                            _prediction(0.05))
        report = monitor.report(Provider.YOUTUBE, Transport.QUIC)
        assert fired == [(Provider.YOUTUBE, Transport.QUIC)]
        assert report.observed_flows == 40
        assert report.page_hinkley_alarm
        assert not report.drifting

    def test_reset_after_retraining(self):
        monitor = self._calibrated()
        for _ in range(100):
            monitor.observe(Provider.YOUTUBE, Transport.QUIC,
                            _prediction(0.4))
        assert monitor.report(Provider.YOUTUBE,
                              Transport.QUIC).drifting
        monitor.reset(Provider.YOUTUBE, Transport.QUIC)
        report = monitor.report(Provider.YOUTUBE, Transport.QUIC)
        assert not report.drifting
        assert report.observed_flows == 0

    def test_calibrate_empty_rejected(self):
        monitor = ConceptDriftMonitor()
        with pytest.raises(ConfigError):
            monitor.calibrate(Provider.NETFLIX, Transport.TCP, [])

    def test_bad_threshold_rejected(self):
        with pytest.raises(ConfigError):
            ConceptDriftMonitor(confidence_drop_threshold=1.5)

    def test_reports_cover_all_observed_scenarios(self):
        monitor = ConceptDriftMonitor()
        monitor.observe(Provider.NETFLIX, Transport.TCP, _prediction(0.9))
        monitor.observe(Provider.AMAZON, Transport.TCP, _prediction(0.9))
        reports = monitor.reports()
        assert len(reports) == 2
        assert all(isinstance(r, DriftReport) for r in reports)


class TestJa3:
    def _hello(self, label="windows_chrome"):
        from repro.fingerprints import build_client_hello
        from repro.util import SeededRNG

        profile = get_profile(UserPlatform.from_label(label),
                              Provider.NETFLIX)
        return build_client_hello(profile.tls_tcp, "x.netflix.com",
                                  SeededRNG(5), resumption=False)

    def test_string_shape(self):
        string = ja3_string(self._hello())
        parts = string.split(",")
        assert len(parts) == 5
        assert parts[0] == "771"  # TLS 1.2 legacy version

    def test_grease_stripped(self):
        string = ja3_string(self._hello())
        from repro.tls import GREASE_VALUES

        for value in GREASE_VALUES:
            assert str(value) not in string.split(",")[1].split("-")

    def test_digest_is_md5(self):
        fp = ja3(self._hello())
        assert len(fp.digest) == 32
        int(fp.digest, 16)  # hex

    def test_same_stack_same_digest_despite_grease(self):
        # GREASE values differ per session but JA3 strips them; Chrome's
        # extension-order randomization *does* change JA3 (the known
        # JA3 fragility) so compare a stable stack instead.
        a = ja3(self._hello("windows_firefox"))
        b = ja3(self._hello("windows_firefox"))
        assert a.digest == b.digest

    def test_different_stacks_differ(self):
        assert ja3(self._hello("windows_firefox")).digest != \
            ja3(self._hello("macOS_safari")).digest


class TestBankPersistence:
    @pytest.fixture(scope="class")
    def small_bank(self):
        lab = generate_lab_dataset(seed=77, scale=0.04)
        return lab, ClassifierBank.train(
            lab,
            model_factory=lambda: RandomForestClassifier(
                n_estimators=4, max_depth=10, random_state=5))

    def test_roundtrip_predictions_identical(self, small_bank, tmp_path):
        lab, bank = small_bank
        save_bank(bank, tmp_path / "bank")
        restored = load_bank(tmp_path / "bank")
        from repro.features import extract_flow_attributes

        for flow in list(lab)[:25]:
            values, record = extract_flow_attributes(flow.packets)
            original = bank.classify(flow.provider, record.transport,
                                     values)
            loaded = restored.classify(flow.provider, record.transport,
                                       values)
            assert original == loaded

    def test_manifest_and_files_exist(self, small_bank, tmp_path):
        _, bank = small_bank
        save_bank(bank, tmp_path / "bank2")
        root = tmp_path / "bank2"
        assert (root / "manifest.json").exists()
        assert (root / "youtube_quic.npz").exists()
        assert (root / "youtube_quic.json").exists()

    def test_load_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            load_bank(tmp_path / "nothing-here")
