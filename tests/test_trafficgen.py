"""Tests for the lab/open-set/campus traffic generators."""

import pytest

from repro.fingerprints import Provider, Transport
from repro.net import PROTO_TCP, PROTO_UDP
from repro.quic import unprotect_client_initial
from repro.tls import parse_client_hello_records
from repro.tls.clienthello import ClientHello
from repro.trafficgen import (
    CampusConfig,
    CampusWorkload,
    FlowDataset,
    dataset_table1,
    generate_lab_dataset,
    generate_openset_dataset,
)


@pytest.fixture(scope="module")
def small_lab() -> FlowDataset:
    return generate_lab_dataset(seed=42, scale=0.04, name="test-lab")


class TestLabDataset:
    def test_composition_covers_all_cells(self, small_lab):
        comp = small_lab.composition()
        assert len(comp) == 52  # Table 1 non-dash cells
        assert all(count >= 2 for count in comp.values())

    def test_deterministic(self):
        a = generate_lab_dataset(seed=9, scale=0.02)
        b = generate_lab_dataset(seed=9, scale=0.02)
        assert [f.platform_label for f in a] == \
            [f.platform_label for f in b]
        assert [f.packets[0].to_bytes() for f in list(a)[:10]] == \
            [f.packets[0].to_bytes() for f in list(b)[:10]]

    def test_different_seed_differs(self):
        a = generate_lab_dataset(seed=1, scale=0.02)
        b = generate_lab_dataset(seed=2, scale=0.02)
        assert [f.packets[0].to_bytes() for f in list(a)[:20]] != \
            [f.packets[0].to_bytes() for f in list(b)[:20]]

    def test_tcp_flow_anatomy(self, small_lab):
        flow = next(f for f in small_lab
                    if f.transport is Transport.TCP)
        syn = flow.packets[0]
        assert syn.is_tcp and syn.tcp.flag_syn and not syn.tcp.flag_ack
        synack = flow.packets[1]
        assert synack.tcp.flag_syn and synack.tcp.flag_ack
        chlo_packet = flow.packets[3]
        hello = parse_client_hello_records(chlo_packet.payload)
        assert hello.server_name == flow.sni

    def test_quic_flow_anatomy(self, small_lab):
        flow = next(f for f in small_lab
                    if f.transport is Transport.QUIC)
        initial = flow.packets[0]
        assert initial.is_udp
        assert initial.ip.protocol == PROTO_UDP
        out = unprotect_client_initial(initial.payload)
        hello = ClientHello.parse_handshake(out.crypto_stream)
        assert hello.server_name == flow.sni
        assert hello.alpn_protocols == ("h3",)

    def test_windows_flows_have_ttl_128(self, small_lab):
        for flow in small_lab:
            first = flow.packets[0]
            if flow.platform_label.startswith("windows"):
                assert first.ip.ttl == 128
            elif flow.platform_label.startswith(("macOS", "iOS")):
                assert first.ip.ttl == 64

    def test_netflix_only_tcp(self, small_lab):
        nf = small_lab.subset(provider=Provider.NETFLIX)
        assert len(nf) > 0
        assert all(f.transport is Transport.TCP for f in nf)

    def test_youtube_has_both_transports(self, small_lab):
        yt = small_lab.subset(provider=Provider.YOUTUBE)
        transports = {f.transport for f in yt}
        assert transports == {Transport.TCP, Transport.QUIC}

    def test_table1_rows(self, small_lab):
        rows = dataset_table1(small_lab)
        assert len(rows) == 52
        assert all(isinstance(count, int) and count > 0
                   for _, _, count in rows)

    def test_flow_key_matches_packets(self, small_lab):
        for flow in list(small_lab)[:30]:
            first = flow.packets[0]
            assert first.flow_key == flow.key
            assert flow.key.protocol in (PROTO_TCP, PROTO_UDP)


class TestOpensetDataset:
    def test_generation_and_size(self):
        ds = generate_openset_dataset(flows_per_pair=2)
        assert len(ds) == 2 * 52

    def test_differs_from_lab_fingerprints(self):
        # The same platform/provider cells must produce (somewhere)
        # different handshake fingerprints than the lab profiles, because
        # of version drift.
        def fingerprints(dataset):
            out = {}
            for f in dataset.subset(provider=Provider.NETFLIX,
                                    transport=Transport.TCP):
                hello = parse_client_hello_records(f.packets[3].payload)
                out.setdefault(f.platform_label, set()).add((
                    hello.handshake_length,
                    hello.cipher_suites,
                    hello.supported_groups,
                    tuple(e.type for e in hello.extensions),
                ))
            return out

        lab = fingerprints(generate_lab_dataset(seed=5, scale=0.02))
        home = fingerprints(generate_openset_dataset(seed=5,
                                                     flows_per_pair=3))
        assert lab and home
        differing = [
            label for label in lab
            if label in home and not (lab[label] & home[label])
        ]
        # At least a third of the platforms drifted visibly.
        assert len(differing) >= len(lab) // 3


class TestCampusWorkload:
    def test_sessions_have_management_and_content(self):
        workload = CampusWorkload(CampusConfig(days=1, sessions_per_day=20,
                                               seed=3))
        sessions = list(workload.sessions())
        assert len(sessions) == 20
        for session in sessions:
            roles = [f.role for f in session.flows]
            assert roles[0] == "management"
            assert roles.count("content") >= 1

    def test_flows_sorted_by_time(self):
        workload = CampusWorkload(CampusConfig(days=1, sessions_per_day=25,
                                               seed=4))
        flows = list(workload.flows())
        times = [f.start_time for f in flows]
        assert times == sorted(times)

    def test_unknown_platform_share(self):
        workload = CampusWorkload(CampusConfig(days=1,
                                               sessions_per_day=300,
                                               seed=5))
        sessions = list(workload.sessions())
        unknown = sum(1 for s in sessions
                      if s.platform_label.startswith(("linux", "webOS")))
        assert 0.04 < unknown / len(sessions) < 0.25

    def test_volume_positive_and_duration_consistent(self):
        workload = CampusWorkload(CampusConfig(days=1, sessions_per_day=40,
                                               seed=6))
        for session in workload.sessions():
            content = [f for f in session.flows if f.role == "content"]
            assert all(f.bytes_down > 0 for f in content)
            total = sum(f.duration for f in content)
            assert total == pytest.approx(session.duration, rel=1e-6)

    def test_deterministic(self):
        flows_a = [f.sni for f in CampusWorkload(
            CampusConfig(days=1, sessions_per_day=15, seed=8)).flows()]
        flows_b = [f.sni for f in CampusWorkload(
            CampusConfig(days=1, sessions_per_day=15, seed=8)).flows()]
        assert flows_a == flows_b
