"""End-to-end integration tests: generator -> pcap -> parser -> features
-> classifier -> telemetry -> analysis, with no shortcuts."""

import pytest

from repro.features import extract_flow_attributes
from repro.fingerprints import Transport
from repro.ml import RandomForestClassifier, accuracy_score
from repro.pipeline import (
    ClassifierBank,
    RealtimePipeline,
    load_bank,
    save_bank,
)
from repro.trafficgen import generate_lab_dataset
from repro.trafficgen.pcapio import load_dataset, save_dataset


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(seed=55, scale=0.06)


@pytest.fixture(scope="module")
def bank(lab):
    return ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=10, max_depth=18, max_features=34,
            random_state=2))


class TestPcapDatasetRoundtrip:
    def test_save_load_preserves_everything(self, lab, tmp_path):
        save_dataset(lab, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert len(loaded) == len(lab)
        assert loaded.composition() == lab.composition()
        original = {(str(f.key), f.platform_label, f.bytes_down)
                    for f in lab}
        restored = {(str(f.key), f.platform_label, f.bytes_down)
                    for f in loaded}
        assert original == restored

    def test_reimported_flows_classify_identically(self, lab, bank,
                                                   tmp_path):
        save_dataset(lab, tmp_path / "ds2")
        loaded = load_dataset(tmp_path / "ds2")
        by_key = {str(f.key): f for f in loaded}
        for flow in list(lab)[:40]:
            twin = by_key[str(flow.key)]
            a, rec_a = extract_flow_attributes(flow.packets)
            b, rec_b = extract_flow_attributes(twin.packets)
            assert a == b
            assert rec_a.transport == rec_b.transport

    def test_missing_files_raise(self, tmp_path):
        from repro.errors import DatasetError

        with pytest.raises(DatasetError):
            load_dataset(tmp_path / "void")


class TestEndToEndAccuracy:
    def test_train_on_disk_roundtripped_bank(self, lab, bank, tmp_path):
        save_bank(bank, tmp_path / "bank")
        restored = load_bank(tmp_path / "bank")
        pipeline = RealtimePipeline(restored)
        truth, predicted = [], []
        for flow in lab:
            record = pipeline.process_flow(flow)
            assert record is not None
            if record.prediction.platform is not None:
                truth.append(flow.platform_label)
                predicted.append(record.prediction.platform)
        assert len(predicted) > len(list(lab)) * 0.5
        assert accuracy_score(truth, predicted) > 0.9

    def test_packet_mode_equals_flow_mode(self, lab, bank):
        flows = [f for f in lab][:30]
        flow_pipeline = RealtimePipeline(bank)
        for flow in flows:
            flow_pipeline.process_flow(flow)
        packet_pipeline = RealtimePipeline(bank)
        for flow in flows:
            for packet in flow.packets:
                packet_pipeline.process_packet(packet)
        packet_pipeline.flush()
        flow_preds = {str(r.key): r.prediction.platform
                      for r in flow_pipeline.store}
        packet_preds = {str(r.key): r.prediction.platform
                        for r in packet_pipeline.store}
        assert flow_preds == packet_preds

    def test_provider_detection_routes_to_right_scenario(self, lab,
                                                         bank):
        pipeline = RealtimePipeline(bank)
        for flow in list(lab)[:80]:
            record = pipeline.process_flow(flow)
            assert record.provider is flow.provider
            assert record.transport is flow.transport


class TestAdversarialInputs:
    def test_random_udp_payloads_never_crash(self, bank):
        from repro.net import make_udp_packet
        from repro.util import SeededRNG

        rng = SeededRNG(9)
        pipeline = RealtimePipeline(bank)
        for i in range(60):
            payload = rng.token_bytes(rng.randint(1, 1400))
            packet = make_udp_packet("10.0.0.1", "10.0.0.2",
                                     40000 + i, 443, payload=payload)
            pipeline.process_packet(packet)
        pipeline.flush()
        assert pipeline.counters.video_flows == 0

    def test_truncated_chlo_tcp_flow_dropped(self, lab, bank):
        from dataclasses import replace

        flow = next(f for f in lab if f.transport is Transport.TCP)
        chlo_packet = flow.packets[3]
        broken = replace(chlo_packet, payload=chlo_packet.payload[:20])
        pipeline = RealtimePipeline(bank)
        for packet in (*flow.packets[:3], broken):
            pipeline.process_packet(packet)
        pipeline.flush()
        assert pipeline.counters.video_flows == 0

    def test_corrupted_quic_initial_dropped(self, lab, bank):
        from dataclasses import replace

        flow = next(f for f in lab if f.transport is Transport.QUIC)
        initial = flow.packets[0]
        corrupted_payload = bytearray(initial.payload)
        corrupted_payload[-1] ^= 0xFF  # break the AEAD tag
        broken = replace(initial, payload=bytes(corrupted_payload))
        pipeline = RealtimePipeline(bank)
        pipeline.process_packet(broken)
        pipeline.flush()
        assert pipeline.counters.video_flows == 0
