"""Tests for Ethernet / IPv4 / TCP / UDP header build+parse."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.net import (
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    UDPHeader,
    internet_checksum,
    ip_from_bytes,
    ip_to_bytes,
    mac_from_bytes,
    mac_to_bytes,
    mss_option,
    sack_permitted_option,
    timestamps_option,
    window_scale_option,
)


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic worked example: 0x0001f203f4f5f6f7 -> 0x220d complement.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_verification_yields_zero(self):
        data = bytes.fromhex("45000073000040004011")
        csum = internet_checksum(data + bytes.fromhex("c0a80001c0a800c7"))
        full = data + csum.to_bytes(2, "big") + \
            bytes.fromhex("c0a80001c0a800c7")
        assert internet_checksum(full) == 0


class TestAddresses:
    def test_ip_roundtrip(self):
        assert ip_from_bytes(ip_to_bytes("192.168.1.254")) == "192.168.1.254"

    def test_bad_ip_rejected(self):
        for bad in ("1.2.3", "1.2.3.4.5", "a.b.c.d", "300.0.0.1"):
            with pytest.raises(ParseError):
                ip_to_bytes(bad)

    def test_mac_roundtrip(self):
        assert mac_from_bytes(mac_to_bytes("aa:bb:cc:00:11:22")) == \
            "aa:bb:cc:00:11:22"


class TestEthernet:
    def test_roundtrip(self):
        header = EthernetHeader("02:00:00:00:00:0a", "02:00:00:00:00:0b",
                                0x0800)
        parsed, used = EthernetHeader.parse(header.to_bytes())
        assert used == 14
        assert parsed == header

    def test_truncated(self):
        with pytest.raises(ParseError):
            EthernetHeader.parse(b"\x00" * 13)


class TestIPv4:
    def test_roundtrip(self):
        header = IPv4Header(src="10.0.0.5", dst="142.250.70.78",
                            protocol=6, ttl=128, tos=0x02,
                            identification=0x1234)
        raw = header.to_bytes(payload_length=100)
        parsed, used = IPv4Header.parse(raw)
        assert used == 20
        assert parsed.src == "10.0.0.5"
        assert parsed.dst == "142.250.70.78"
        assert parsed.ttl == 128
        assert parsed.protocol == 6
        assert parsed.tos == 0x02
        assert parsed.total_length == 120
        assert parsed.identification == 0x1234

    def test_checksum_validates(self):
        raw = IPv4Header(src="1.2.3.4", dst="5.6.7.8",
                         protocol=17).to_bytes(payload_length=8)
        assert internet_checksum(raw) == 0

    def test_ecn_property(self):
        assert IPv4Header("1.1.1.1", "2.2.2.2", 6, tos=0x01).ecn == 1
        assert IPv4Header("1.1.1.1", "2.2.2.2", 6, tos=0x02).ecn == 2

    def test_rejects_ipv6(self):
        raw = bytearray(IPv4Header("1.2.3.4", "5.6.7.8", 6).to_bytes(0))
        raw[0] = (6 << 4) | 5
        with pytest.raises(ParseError):
            IPv4Header.parse(bytes(raw))

    @given(ttl=st.integers(min_value=1, max_value=255))
    def test_ttl_preserved(self, ttl):
        raw = IPv4Header("10.0.0.1", "10.0.0.2", 6, ttl=ttl).to_bytes(0)
        parsed, _ = IPv4Header.parse(raw)
        assert parsed.ttl == ttl


class TestTCP:
    def _syn(self) -> TCPHeader:
        return TCPHeader(
            src_port=51000, dst_port=443, seq=0xDEADBEEF,
            flag_syn=True, flag_ece=True, flag_cwr=True,
            window=64240,
            options=(mss_option(1460), sack_permitted_option(),
                     window_scale_option(8), timestamps_option(12345)),
        )

    def test_syn_roundtrip(self):
        header = self._syn()
        raw = header.to_bytes("10.0.0.5", "142.250.70.78")
        parsed, used = TCPHeader.parse(raw)
        assert used % 4 == 0
        assert parsed.src_port == 51000
        assert parsed.dst_port == 443
        assert parsed.flag_syn and parsed.flag_ece and parsed.flag_cwr
        assert not parsed.flag_ack and not parsed.flag_fin
        assert parsed.window == 64240
        assert parsed.mss == 1460
        assert parsed.window_scale == 8
        assert parsed.sack_permitted

    def test_option_accessors_absent(self):
        header = TCPHeader(src_port=1, dst_port=2, flag_syn=True)
        assert header.mss is None
        assert header.window_scale is None
        assert not header.sack_permitted

    def test_payload_carried(self):
        header = TCPHeader(src_port=1024, dst_port=443, flag_ack=True,
                           flag_psh=True)
        raw = header.to_bytes("10.0.0.1", "10.0.0.2", b"hello tls")
        parsed, used = TCPHeader.parse(raw)
        assert raw[used:] == b"hello tls"

    def test_truncated_rejected(self):
        with pytest.raises(ParseError):
            TCPHeader.parse(b"\x00" * 10)

    def test_bad_option_length_rejected(self):
        raw = bytearray(self._syn().to_bytes("1.1.1.1", "2.2.2.2"))
        raw[20] = 2   # MSS kind
        raw[21] = 99  # bogus length beyond options area
        with pytest.raises(ParseError):
            TCPHeader.parse(bytes(raw))

    @given(
        flags=st.lists(st.booleans(), min_size=8, max_size=8),
        window=st.integers(min_value=0, max_value=65535),
    )
    def test_flags_roundtrip(self, flags, window):
        header = TCPHeader(
            src_port=1000, dst_port=2000,
            flag_cwr=flags[0], flag_ece=flags[1], flag_urg=flags[2],
            flag_ack=flags[3], flag_psh=flags[4], flag_rst=flags[5],
            flag_syn=flags[6], flag_fin=flags[7], window=window,
        )
        parsed, _ = TCPHeader.parse(header.to_bytes("1.1.1.1", "2.2.2.2"))
        assert (parsed.flag_cwr, parsed.flag_ece, parsed.flag_urg,
                parsed.flag_ack, parsed.flag_psh, parsed.flag_rst,
                parsed.flag_syn, parsed.flag_fin) == tuple(flags)
        assert parsed.window == window


class TestUDP:
    def test_roundtrip(self):
        header = UDPHeader(src_port=50000, dst_port=443)
        raw = header.to_bytes("10.0.0.9", "172.217.0.1", b"quic initial")
        parsed, used = UDPHeader.parse(raw)
        assert used == 8
        assert parsed.src_port == 50000
        assert parsed.dst_port == 443
        assert parsed.length == 8 + len(b"quic initial")

    def test_truncated(self):
        with pytest.raises(ParseError):
            UDPHeader.parse(b"\x00" * 7)
