"""Tests for the Fig 4 pipeline: bank, confidence selector, engine, store."""

import pytest

from repro.errors import PipelineError
from repro.fingerprints import Provider, Transport
from repro.pipeline import (
    ClassifierBank,
    PlatformPrediction,
    RealtimePipeline,
    TelemetryStore,
    scenario_data,
    select_prediction,
    split_platform_label,
)
from repro.trafficgen import CampusConfig, CampusWorkload, generate_lab_dataset


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(seed=21, scale=0.08)


@pytest.fixture(scope="module")
def bank(lab):
    from repro.ml import RandomForestClassifier

    return ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=8, max_depth=16, random_state=1),
    )


class TestConfidenceSelector:
    def test_confident_composite(self):
        pred = select_prediction("windows_chrome", 0.95,
                                 "windows", 0.99, "chrome", 0.97)
        assert pred.status == "classified"
        assert pred.platform == "windows_chrome"
        assert pred.device == "windows"
        assert pred.agent == "chrome"

    def test_partial_device_only(self):
        pred = select_prediction("iOS_safari", 0.55,
                                 "iOS", 0.92, "safari", 0.6)
        assert pred.status == "partial"
        assert pred.platform is None
        assert pred.device == "iOS"
        assert pred.agent is None

    def test_partial_agent_only(self):
        pred = select_prediction("iOS_safari", 0.55,
                                 "iOS", 0.6, "safari", 0.85)
        assert pred.status == "partial"
        assert pred.agent == "safari"
        assert pred.device is None

    def test_unknown(self):
        pred = select_prediction("iOS_safari", 0.5, "iOS", 0.5,
                                 "safari", 0.5)
        assert pred.status == "unknown"
        assert pred.platform is None and pred.device is None

    def test_threshold_boundary_inclusive(self):
        pred = select_prediction("a_b", 0.8, "a", 0.1, "b", 0.1)
        assert pred.status == "classified"

    def test_split_platform_label(self):
        assert split_platform_label("windows_chrome") == \
            ("windows", "chrome")
        assert split_platform_label("androidTV_nativeApp") == \
            ("androidTV", "nativeApp")


class TestClassifierBank:
    def test_all_five_scenarios_trained(self, bank):
        assert bank.has_scenario(Provider.YOUTUBE, Transport.QUIC)
        assert bank.has_scenario(Provider.YOUTUBE, Transport.TCP)
        assert bank.has_scenario(Provider.NETFLIX, Transport.TCP)
        assert bank.has_scenario(Provider.DISNEY, Transport.TCP)
        assert bank.has_scenario(Provider.AMAZON, Transport.TCP)
        assert not bank.has_scenario(Provider.NETFLIX, Transport.QUIC)

    def test_missing_scenario_raises(self, bank):
        with pytest.raises(PipelineError):
            bank.scenario(Provider.NETFLIX, Transport.QUIC)

    def test_classify_training_flow_correctly(self, lab, bank):
        from repro.features import extract_flow_attributes

        flow = next(f for f in lab
                    if f.platform_label == "windows_firefox"
                    and f.provider is Provider.NETFLIX)
        values, _ = extract_flow_attributes(flow.packets)
        pred = bank.classify(Provider.NETFLIX, Transport.TCP, values)
        assert pred.platform == "windows_firefox"
        assert pred.status == "classified"

    def test_training_set_accuracy_high(self, lab, bank):
        data = scenario_data(lab, Provider.AMAZON, Transport.TCP)
        scenario = bank.scenario(Provider.AMAZON, Transport.TCP)
        rows = scenario.encoder.transform(data.samples)
        preds = scenario.platform_model.predict(rows)
        correct = sum(1 for p, t in zip(preds, data.platform_labels)
                      if p == t)
        assert correct / len(preds) > 0.9


class TestRealtimePipelinePacketMode:
    def test_packet_mode_classifies_and_accounts(self, lab, bank):
        pipeline = RealtimePipeline(bank)
        flows = [f for f in lab][:40]
        for flow in flows:
            for packet in flow.packets:
                pipeline.process_packet(packet)
        emitted = pipeline.flush()
        assert emitted > 0
        assert pipeline.counters.video_flows == emitted
        assert len(pipeline.store) == emitted
        # Telemetry accumulated some downstream payload bytes.
        assert all(r.bytes_down > 0 for r in pipeline.store)

    def test_packet_mode_ignores_non_443(self, bank):
        from repro.net import TCPHeader, make_tcp_packet

        pipeline = RealtimePipeline(bank)
        packet = make_tcp_packet(
            "10.0.0.1", "10.0.0.2",
            TCPHeader(src_port=1234, dst_port=22, flag_syn=True))
        pipeline.process_packet(packet)
        assert pipeline.counters.flows == 0

    def test_truncated_flow_counted_incomplete(self, lab, bank):
        """A flow cut off before its handshake completes is not a parse
        failure (it never reached the 8-packet bar) — it must surface as
        ``incomplete`` at flush instead of vanishing silently."""
        flow = next(iter(lab))
        pipeline = RealtimePipeline(bank)
        # SYN / SYN-ACK only: no ClientHello, fewer than 8 packets.
        for packet in flow.packets[:2]:
            pipeline.process_packet(packet)
        emitted = pipeline.flush()
        assert emitted == 0
        assert pipeline.counters.incomplete == 1
        assert pipeline.counters.parse_failures == 0
        assert pipeline.counters.video_flows == 0
        assert len(pipeline.store) == 0

    def test_truncated_flow_incomplete_on_idle_eviction(self, lab, bank):
        flow = next(iter(lab))
        pipeline = RealtimePipeline(bank)
        for packet in flow.packets[:2]:
            pipeline.process_packet(packet)
        assert pipeline.flush_idle(now=1e9, idle_timeout=1.0) == 0
        assert pipeline.counters.incomplete == 1
        assert pipeline.live_flows == 0

    def test_complete_flows_not_counted_incomplete(self, lab, bank):
        pipeline = RealtimePipeline(bank)
        for flow in list(lab)[:20]:
            for packet in flow.packets:
                pipeline.process_packet(packet)
        pipeline.flush()
        assert pipeline.counters.incomplete == 0

    def test_non_video_sni_filtered(self, bank):
        from repro.fingerprints import get_profile, UserPlatform
        from repro.trafficgen import FlowBuildRequest, FlowFactory
        from repro.util import SeededRNG

        factory = FlowFactory(SeededRNG(4))
        profile = get_profile(UserPlatform.from_label("windows_chrome"),
                              Provider.YOUTUBE)
        flow = factory.build(FlowBuildRequest(
            platform_label="windows_chrome", provider=Provider.YOUTUBE,
            transport=Transport.TCP, profile=profile,
            sni="www.wikipedia.org"))
        pipeline = RealtimePipeline(bank)
        for packet in flow.packets:
            pipeline.process_packet(packet)
        pipeline.flush()
        assert pipeline.counters.non_video_flows == 1
        assert pipeline.counters.video_flows == 0


class TestRealtimePipelineFlowMode:
    def test_flow_mode_on_lab_flows(self, lab, bank):
        pipeline = RealtimePipeline(bank)
        flows = [f for f in lab][:60]
        n = pipeline.process_flows(flows)
        assert n == 60
        assert len(pipeline.store) == 60
        record = pipeline.store.query()[0]
        assert record.duration > 0
        assert record.mean_mbps > 0

    def test_flow_mode_campus_includes_unknowns(self, bank):
        workload = CampusWorkload(CampusConfig(days=1,
                                               sessions_per_day=60,
                                               seed=17))
        pipeline = RealtimePipeline(bank)
        pipeline.process_flows(workload.flows())
        statuses = {r.prediction.status for r in pipeline.store}
        assert "classified" in statuses
        # Unknown-platform flows should often land below the confidence
        # bar (unknown or partial).
        assert pipeline.counters.unknown + pipeline.counters.partial > 0

    def test_management_flows_classified_too(self, lab, bank):
        workload = CampusWorkload(CampusConfig(days=1,
                                               sessions_per_day=10,
                                               seed=2))
        pipeline = RealtimePipeline(bank)
        pipeline.process_flows(workload.flows())
        roles = {r.role for r in pipeline.store}
        assert "content" in roles


class TestTelemetryStore:
    def _record(self, provider=Provider.YOUTUBE, status="classified",
                platform="windows_chrome", mbps=2.0, role="content"):
        from repro.net import FlowKey
        from repro.pipeline import TelemetryRecord

        duration = 600.0
        pred = PlatformPrediction(
            status=status, platform=platform if status == "classified"
            else None,
            device=platform.split("_")[0] if status == "classified"
            else None,
            agent=platform.split("_")[1] if status == "classified"
            else None,
            confidence=0.9 if status == "classified" else 0.5,
            device_confidence=0.9, agent_confidence=0.9)
        return TelemetryRecord(
            key=FlowKey(6, "10.0.0.1", 50000, "1.2.3.4", 443),
            provider=provider, transport=Transport.TCP, role=role,
            start_time=0.0, duration=duration,
            bytes_down=int(mbps * duration * 1e6 / 8), bytes_up=1000,
            prediction=pred)

    def test_query_filters(self):
        store = TelemetryStore()
        store.add(self._record(Provider.YOUTUBE))
        store.add(self._record(Provider.NETFLIX))
        store.add(self._record(Provider.NETFLIX, status="unknown"))
        assert len(store.query(provider=Provider.NETFLIX)) == 2
        assert len(store.query(provider=Provider.NETFLIX,
                               status="classified")) == 1
        assert len(store.query(where=lambda r: r.mean_mbps > 1.0)) == 3

    def test_group_by(self):
        store = TelemetryStore()
        store.add(self._record(platform="windows_chrome"))
        store.add(self._record(platform="windows_chrome"))
        store.add(self._record(platform="iOS_safari"))
        groups = store.group_by(lambda r: r.platform_label)
        assert len(groups["windows_chrome"]) == 2
        assert len(groups["iOS_safari"]) == 1

    def test_mbps_and_watch_hours(self):
        record = self._record(mbps=4.0)
        assert record.mean_mbps == pytest.approx(4.0)
        assert record.watch_hours == pytest.approx(600 / 3600)

    def test_classified_share(self):
        store = TelemetryStore()
        store.add(self._record())
        store.add(self._record(status="unknown"))
        assert store.classified_share() == 0.5
