"""Ingest equivalence suite: the zero-copy raw-frame path must be
indistinguishable from the eager per-record ``Packet.from_bytes`` path.

The eager path is the oracle, the raw path is the product. On the same
campus-mix capture — video flows of every scenario interleaved with the
non-video bulk that dominates a real tap, a slice of it VLAN-tagged and
a slice reordered — the two paths must produce identical counters,
identical predictions, and identical telemetry, unsharded and sharded,
in-memory and through a pcap file.
"""

from dataclasses import replace
from itertools import zip_longest

import pytest

from repro.errors import ParseError
from repro.ml import RandomForestClassifier
from repro.net import (
    EthernetHeader,
    Packet,
    PcapWriter,
    TCPHeader,
    make_tcp_packet,
)
from repro.pipeline import (
    ClassifierBank,
    RealtimePipeline,
    ShardedPipeline,
    ingest_pcap,
)
from repro.fingerprints import Provider, Transport, UserPlatform, get_profile
from repro.trafficgen import (
    FlowBuildRequest,
    FlowFactory,
    generate_lab_dataset,
)
from repro.util import SeededRNG


@pytest.fixture(scope="module")
def bank(lab):
    return ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=6, max_depth=14, random_state=1),
    )


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(seed=31, scale=0.05)


def _bulk_frames(count: int, seed: int):
    """Non-video background traffic: TCP on non-443 ports plus some
    443 traffic from an unknown (non-video) host."""
    rng = SeededRNG(seed)
    frames = []
    for i in range(count):
        port = 8080 if i % 3 else 443
        tcp = TCPHeader(src_port=40000 + i % 500, dst_port=port,
                        seq=i * 1000, flag_ack=True)
        packet = make_tcp_packet(
            f"10.{i % 150}.2.3", "93.184.216.34", tcp,
            payload=rng.token_bytes(400), timestamp=10.0 + i * 0.0003)
        frames.append(packet)
    return frames


@pytest.fixture(scope="module")
def campus_frames(lab):
    """The mixed trace: interleaved video flows, VLAN-tagged slice,
    reordered slice, bulk-dominated."""
    flows = list(lab)[::5][:80]
    # A full TLS flow toward a non-video host: exercises the SNI filter
    # (non_video_flows) rather than the incomplete/parse-failure bins.
    factory = FlowFactory(SeededRNG(13))
    profile = get_profile(UserPlatform.from_label("windows_chrome"),
                          Provider.YOUTUBE)
    flows.append(factory.build(FlowBuildRequest(
        platform_label="windows_chrome", provider=Provider.YOUTUBE,
        transport=Transport.TCP, profile=profile,
        sni="www.wikipedia.org")))
    rows = zip_longest(*[flow.packets for flow in flows])
    video = [p for row in rows for p in row if p is not None]
    # VLAN-tag every 4th video packet's flow deterministically by
    # tagging packets of specific flows
    tagged_keys = {flow.key.canonical() for flow in flows[::4]}
    video = [replace(p, eth=EthernetHeader(vlan_id=207))
             if p.flow_key.canonical() in tagged_keys else p
             for p in video]
    bulk = _bulk_frames(1200, seed=77)
    mixed = []
    bulk_iter = iter(bulk)
    for i, packet in enumerate(video):
        mixed.append(packet)
        for _ in range(3):
            nxt = next(bulk_iter, None)
            if nxt is not None:
                mixed.append(nxt)
    mixed.extend(bulk_iter)
    # Reorder a slice: swap adjacent packets in one region
    for i in range(100, 160, 2):
        mixed[i], mixed[i + 1] = mixed[i + 1], mixed[i]
    return [(p.to_bytes(), p.timestamp) for p in mixed]


def _run_eager(bank, frames, **kw):
    pipeline = RealtimePipeline(bank, **kw)
    for data, timestamp in frames:
        pipeline.process_packet(Packet.from_bytes(data, timestamp))
    pipeline.flush()
    return pipeline


def _run_raw(bank, frames, **kw):
    pipeline = RealtimePipeline(bank, **kw)
    pipeline.process_frames(frames)
    pipeline.flush()
    return pipeline


class TestRawVsEager:
    def test_counters_and_telemetry_identical(self, bank, campus_frames):
        eager = _run_eager(bank, campus_frames)
        raw = _run_raw(bank, campus_frames)
        assert raw.counters == eager.counters
        assert raw.counters.video_flows > 0
        assert raw.counters.non_video_flows > 0  # SNI-filtered TLS flow
        assert raw.counters.incomplete > 0       # handshake-less bulk
        assert list(raw.store) == list(eager.store)

    def test_predictions_identical_any_batch_size(self, bank,
                                                  campus_frames):
        eager = _run_eager(bank, campus_frames, batch_size=1)
        raw = _run_raw(bank, campus_frames, batch_size=32)
        assert raw.counters == eager.counters
        eager_preds = [(str(r.key), r.prediction) for r in eager.store]
        raw_preds = [(str(r.key), r.prediction) for r in raw.store]
        assert raw_preds == eager_preds

    def test_rollup_retention_identical(self, bank, campus_frames,
                                        tmp_path):
        from repro.telemetry import save_rollup

        eager = _run_eager(bank, campus_frames, retention="both")
        raw = _run_raw(bank, campus_frames, retention="both")
        save_rollup(eager.rollup, tmp_path / "eager")
        save_rollup(raw.rollup, tmp_path / "raw")
        assert (tmp_path / "raw" / "rollup.json").read_bytes() == \
            (tmp_path / "eager" / "rollup.json").read_bytes()


class TestShardedRawVsEager:
    def test_sharded_raw_equals_sharded_eager(self, bank, campus_frames):
        eager = ShardedPipeline(bank, num_shards=4, batch_size=8)
        for data, timestamp in campus_frames:
            eager.process_packet(Packet.from_bytes(data, timestamp))
        eager.flush()
        raw = ShardedPipeline(bank, num_shards=4, batch_size=8)
        raw.process_frames(campus_frames)
        raw.flush()
        assert raw.counters == eager.counters
        assert raw.shard_loads == eager.shard_loads
        assert list(raw.telemetry) == list(eager.telemetry)

    def test_sharded_raw_equals_unsharded_raw(self, bank, campus_frames):
        flat = _run_raw(bank, campus_frames)
        sharded = ShardedPipeline(bank, num_shards=3)
        sharded.process_frames(campus_frames)
        sharded.flush()
        assert sharded.counters == flat.counters
        assert sorted(map(repr, sharded.telemetry)) == \
            sorted(map(repr, flat.store))


class TestPcapIngestGlue:
    def test_ingest_pcap_raw_equals_eager(self, tmp_path, bank,
                                          campus_frames):
        path = tmp_path / "campus.pcap"
        with PcapWriter(path) as writer:
            for data, timestamp in campus_frames:
                writer.write_bytes(data, timestamp)
        eager = RealtimePipeline(bank)
        res_eager = ingest_pcap(eager, path, mode="eager")
        eager.flush()
        raw = RealtimePipeline(bank)
        res_raw = ingest_pcap(raw, path, mode="raw")
        raw.flush()
        assert res_raw == res_eager == (len(campus_frames), 0)
        assert raw.counters == eager.counters
        # pcap timestamps are quantized to microseconds on write: both
        # paths see the same quantized values, so records stay equal.
        assert list(raw.store) == list(eager.store)

    def test_ingest_pcap_skips_foreign_frames_identically(self, tmp_path,
                                                          bank,
                                                          campus_frames):
        """A real capture carries ARP/IPv6 frames: both paths must skip
        the same frames and agree on everything else."""
        path = tmp_path / "mixed-linklayer.pcap"
        arp = b"\xff" * 12 + b"\x08\x06" + b"\x00" * 28
        ipv6 = b"\x02" * 12 + b"\x86\xdd" + b"\x60" + b"\x00" * 47
        with PcapWriter(path) as writer:
            writer.write_bytes(arp, 0.5)
            for data, timestamp in campus_frames[:200]:
                writer.write_bytes(data, timestamp)
            writer.write_bytes(ipv6, 0.9)
        results = []
        for mode in ("eager", "raw"):
            pipeline = RealtimePipeline(bank)
            result = ingest_pcap(pipeline, path, mode=mode)
            pipeline.flush()
            results.append((result, pipeline.counters,
                            list(pipeline.store)))
        assert results[0] == results[1]
        assert results[0][0] == (200, 2)
        # strict mode keeps the fail-fast behavior for our own files
        with pytest.raises(ParseError):
            ingest_pcap(RealtimePipeline(bank), path, mode="raw",
                        strict=True)

    def test_ingest_pcap_rejects_unknown_mode(self, tmp_path, bank):
        with pytest.raises(ValueError):
            ingest_pcap(RealtimePipeline(bank), tmp_path / "x.pcap",
                        mode="dpdk")
