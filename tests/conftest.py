"""Shared pytest configuration for the test suite."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: performance smoke tests (deselect with -m 'not perf')")
