"""AES block cipher tests against FIPS 197 / SP 800-38A vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import AES
from repro.errors import CryptoError


class TestAesVectors:
    def test_fips197_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_fips197_aes192(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f1011121314151617"
        )
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_fips197_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"
        )
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_sp80038a_ecb_aes128(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        cipher = AES(key)
        vectors = [
            ("6bc1bee22e409f96e93d7e117393172a",
             "3ad77bb40d7a3660a89ecaf32466ef97"),
            ("ae2d8a571e03ac9c9eb76fac45af8e51",
             "f5d3d58503b9699de785895a96fdbaaf"),
            ("30c81c46a35ce411e5fbc1191a0a52ef",
             "43b1cd7f598ece23881b00e3ed030688"),
            ("f69f2445df4f9b17ad2b417be66c3710",
             "7b0c785e27e8ad3f8223207104725dd4"),
        ]
        for pt_hex, ct_hex in vectors:
            assert cipher.encrypt_block(bytes.fromhex(pt_hex)) == \
                bytes.fromhex(ct_hex)

    def test_decrypt_vectors(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ciphertext = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        expected = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert AES(key).decrypt_block(ciphertext) == expected


class TestAesInterface:
    def test_rejects_bad_key_length(self):
        with pytest.raises(CryptoError):
            AES(b"short")

    def test_rejects_bad_block_length(self):
        cipher = AES(bytes(16))
        with pytest.raises(CryptoError):
            cipher.encrypt_block(b"tooshort")
        with pytest.raises(CryptoError):
            cipher.decrypt_block(bytes(17))

    def test_ctr_keystream_length_and_prefix(self):
        cipher = AES(bytes(16))
        counter = bytes(12) + (1).to_bytes(4, "big")
        ks40 = cipher.ctr_keystream(counter, 40)
        ks64 = cipher.ctr_keystream(counter, 64)
        assert len(ks40) == 40
        assert ks64[:40] == ks40

    def test_ctr_counter_wraps_32_bits(self):
        cipher = AES(bytes(16))
        counter = bytes(12) + (0xFFFFFFFF).to_bytes(4, "big")
        # Second block must use counter 0 (inc32 wrap), not carry into
        # the 96-bit prefix.
        ks = cipher.ctr_keystream(counter, 32)
        block2 = cipher.encrypt_block(bytes(12) + bytes(4))
        assert ks[16:] == block2


class TestAesProperties:
    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    def test_encrypt_decrypt_roundtrip_128(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(key=st.binary(min_size=32, max_size=32),
           block=st.binary(min_size=16, max_size=16))
    def test_encrypt_decrypt_roundtrip_256(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(block=st.binary(min_size=16, max_size=16))
    def test_encryption_is_permutation(self, block):
        cipher = AES(bytes(range(16)))
        out = cipher.encrypt_block(block)
        assert len(out) == 16
        # A cipher must not be the identity map on random blocks
        # (holds for AES with overwhelming probability).
        assert out != block
