"""Tests for the Table 6 baselines and the §5.2 analysis modules."""

import pytest

from repro.analysis import (
    bandwidth_by_agent,
    bandwidth_by_device,
    excluded_share,
    hourly_usage_gb,
    mobile_share,
    peak_hours,
    reliable_records,
    watch_time_by_agent,
    watch_time_by_device,
)
from repro.baselines import (
    ADAPTABLE_BASELINES,
    AndersonFingerprint,
    MARZANI_2023,
    NOT_ADAPTABLE,
    RICHARDSON_2020,
    RenFlowMetadata,
)
from repro.errors import NotAdaptableError
from repro.fingerprints import DeviceClass, Provider, Transport
from repro.ml import RandomForestClassifier
from repro.pipeline import ClassifierBank, RealtimePipeline, scenario_data
from repro.trafficgen import CampusConfig, CampusWorkload, generate_lab_dataset


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(seed=31, scale=0.15)


@pytest.fixture(scope="module")
def campus_store(lab):
    # The deployed configuration (max_features=34) matters here: with
    # sqrt-features the composite confidence rarely clears the 80% bar.
    bank = ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=15, max_depth=20, max_features=34,
            random_state=3))
    pipeline = RealtimePipeline(bank)
    workload = CampusWorkload(CampusConfig(days=1, sessions_per_day=250,
                                           seed=23))
    pipeline.process_flows(workload.flows())
    return pipeline.store


class TestBaselines:
    def test_all_adaptable_run_on_netflix(self, lab):
        data = scenario_data(lab, Provider.NETFLIX, Transport.TCP)
        for baseline in ADAPTABLE_BASELINES:
            acc = baseline.evaluate(data, n_splits=3, n_estimators=5)
            assert 0.0 <= acc <= 1.0

    def test_anderson_strong_on_tcp(self, lab):
        data = scenario_data(lab, Provider.NETFLIX, Transport.TCP)
        acc = AndersonFingerprint().evaluate(data, n_splits=3,
                                             n_estimators=8)
        assert acc > 0.7

    def test_ren_collapses_on_quic(self, lab):
        data = scenario_data(lab, Provider.YOUTUBE, Transport.QUIC)
        acc = RenFlowMetadata().evaluate(data, n_splits=3,
                                         n_estimators=8)
        # With only the (padded, near-constant) datagram size visible,
        # Ren's method cannot separate 12 platforms.
        assert acc < 0.6

    def test_ren_much_weaker_than_anderson_on_quic(self, lab):
        data = scenario_data(lab, Provider.YOUTUBE, Transport.QUIC)
        anderson = AndersonFingerprint().evaluate(data, n_splits=3,
                                                  n_estimators=8)
        ren = RenFlowMetadata().evaluate(data, n_splits=3,
                                         n_estimators=8)
        assert anderson > ren + 0.2

    def test_not_adaptable_raise(self):
        for method in NOT_ADAPTABLE:
            with pytest.raises(NotAdaptableError):
                method.evaluate()
        assert "host" in RICHARDSON_2020.reason
        assert "automata" in MARZANI_2023.reason

    def test_metadata_fields_present(self):
        for baseline in ADAPTABLE_BASELINES:
            assert baseline.name
            assert baseline.citation
            assert baseline.adaptations


class TestAnalysis:
    def test_reliable_records_only_classified(self, campus_store):
        records = reliable_records(campus_store)
        assert records
        assert all(r.prediction.status == "classified" for r in records)
        assert all(r.role == "content" for r in records)

    def test_excluded_share_in_plausible_band(self, campus_store):
        share = excluded_share(campus_store)
        # Paper excludes ~20%; unknown platforms + lookalikes put us in
        # the same ballpark (the band is generous because this fixture
        # trains at reduced scale, which lowers confidence overall).
        assert 0.02 < share < 0.5

    def test_watch_time_by_device_structure(self, campus_store):
        by_device = watch_time_by_device(campus_store)
        assert Provider.YOUTUBE in by_device
        yt = by_device[Provider.YOUTUBE]
        assert sum(yt.values()) > 0
        assert set(yt) <= {"windows", "macOS", "android", "iOS",
                           "androidTV", "ps5"}

    def test_youtube_dominates_watch_time(self, campus_store):
        by_device = watch_time_by_device(campus_store)
        totals = {p: sum(v.values()) for p, v in by_device.items()}
        assert totals[Provider.YOUTUBE] == max(totals.values())

    def test_youtube_mobile_share_higher_than_netflix(self, campus_store):
        yt = mobile_share(campus_store, Provider.YOUTUBE)
        nf = mobile_share(campus_store, Provider.NETFLIX)
        assert yt > nf

    def test_watch_time_by_agent_keys(self, campus_store):
        by_agent = watch_time_by_agent(campus_store)
        yt = by_agent[Provider.YOUTUBE]
        assert any(device == "windows" and agent == "chrome"
                   for device, agent in yt)

    def test_bandwidth_orderings(self, campus_store):
        by_device = bandwidth_by_device(campus_store)
        amazon = by_device.get(Provider.AMAZON, {})
        youtube = by_device.get(Provider.YOUTUBE, {})
        if "macOS" in amazon and "macOS" in youtube:
            assert amazon["macOS"]["median"] > youtube["macOS"]["median"]

    def test_bandwidth_by_agent_structure(self, campus_store):
        by_agent = bandwidth_by_agent(campus_store)
        for provider, stats in by_agent.items():
            for key, box in stats.items():
                assert box["q1"] <= box["median"] <= box["q3"]

    def test_hourly_usage_shape(self, campus_store):
        hourly = hourly_usage_gb(campus_store)
        yt = hourly.get(Provider.YOUTUBE, {})
        assert DeviceClass.PC in yt
        assert len(yt[DeviceClass.PC]) == 24
        assert sum(yt[DeviceClass.PC]) > 0

    def test_evening_peaks(self, campus_store):
        hourly = hourly_usage_gb(campus_store)
        nf = hourly.get(Provider.NETFLIX, {}).get(DeviceClass.PC)
        if nf and sum(nf) > 0:
            peaks = peak_hours(nf, top_n=4)
            # Netflix's peak block sits in the evening.
            assert any(18 <= h <= 23 for h in peaks)

    def test_peak_hours_helper(self):
        series = [0.0] * 24
        series[20] = 5.0
        series[21] = 4.0
        assert peak_hours(series, top_n=2) == [20, 21]
