"""Unit tests for analysis internals on hand-built telemetry records
(the campus-level behaviour is covered in test_baselines_analysis)."""

import pytest

from repro.analysis import (
    device_class_of,
    excluded_share,
    hourly_usage_gb,
    mobile_share,
    peak_hours,
    total_watch_hours,
    watch_time_by_device,
)
from repro.fingerprints import DeviceClass, Provider, Transport
from repro.net import FlowKey
from repro.pipeline import PlatformPrediction, TelemetryRecord, TelemetryStore


def _record(platform="windows_chrome", provider=Provider.YOUTUBE,
            start=0.0, duration=3600.0, mbps=2.0, status="classified",
            role="content"):
    device, _, agent = platform.partition("_")
    prediction = PlatformPrediction(
        status=status,
        platform=platform if status == "classified" else None,
        device=device if status == "classified" else None,
        agent=agent if status == "classified" else None,
        confidence=0.95 if status == "classified" else 0.4,
        device_confidence=0.95, agent_confidence=0.95)
    return TelemetryRecord(
        key=FlowKey(6, "10.0.0.1", 40000, "1.1.1.1", 443),
        provider=provider, transport=Transport.TCP, role=role,
        start_time=start, duration=duration,
        bytes_down=int(mbps * duration * 1e6 / 8), bytes_up=1,
        prediction=prediction)


class TestWatchTime:
    def test_hours_per_day_normalization(self):
        store = TelemetryStore()
        # Two one-hour flows across a two-day observation window.
        store.add(_record(start=0.0))
        store.add(_record(start=86400.0 + 82800.0))
        by_device = watch_time_by_device(store)
        windows = by_device[Provider.YOUTUBE]["windows"]
        assert windows == pytest.approx(2.0 / 2.0, rel=0.05)

    def test_total_watch_hours(self):
        store = TelemetryStore()
        store.add(_record(duration=1800))
        store.add(_record(duration=5400))
        assert total_watch_hours(store) == pytest.approx(2.0)

    def test_unclassified_excluded(self):
        store = TelemetryStore()
        store.add(_record())
        store.add(_record(status="unknown"))
        assert total_watch_hours(store) == pytest.approx(1.0)
        assert excluded_share(store) == 0.5

    def test_mobile_share(self):
        store = TelemetryStore()
        store.add(_record("iOS_nativeApp"))
        store.add(_record("windows_chrome"))
        store.add(_record("android_nativeApp"))
        assert mobile_share(store, Provider.YOUTUBE) == \
            pytest.approx(2 / 3)

    def test_empty_store(self):
        store = TelemetryStore()
        assert watch_time_by_device(store) == {}
        assert mobile_share(store, Provider.YOUTUBE) == 0.0


class TestTemporal:
    def test_flow_spanning_hours_splits_volume(self):
        store = TelemetryStore()
        # 2-hour flow starting at 22:30 -> contributes to hours
        # 22, 23, and 0 (wrap) proportionally.
        start = 22.5 * 3600
        store.add(_record(start=start, duration=2 * 3600, mbps=4.0))
        hourly = hourly_usage_gb(store)
        series = hourly[Provider.YOUTUBE][DeviceClass.PC]
        assert series[22] > 0 and series[23] > 0 and series[0] > 0
        assert series[5] == 0.0
        # Full hour (23) gets twice the half hours (22, 0... 0 is 30min).
        assert series[23] == pytest.approx(series[22] * 2, rel=0.01)
        total_gb = _record(start=start, duration=7200,
                           mbps=4.0).bytes_down / 1e9
        assert sum(series) == pytest.approx(total_gb, rel=0.01)

    def test_device_class_mapping(self):
        assert device_class_of("windows") is DeviceClass.PC
        assert device_class_of("iOS") is DeviceClass.MOBILE
        assert device_class_of("ps5") is DeviceClass.TV
        assert device_class_of("toaster") is None

    def test_peak_hours_orders_by_hour(self):
        series = [0.0] * 24
        series[21], series[19], series[20] = 3.0, 1.0, 2.0
        assert peak_hours(series, top_n=3) == [19, 20, 21]

    def test_zero_duration_flow_ignored(self):
        store = TelemetryStore()
        store.add(_record(duration=0.0))
        hourly = hourly_usage_gb(store)
        series = hourly.get(Provider.YOUTUBE, {}).get(DeviceClass.PC)
        assert series is None or sum(series) == 0.0
