"""Observability plane suite: registry semantics, exposition, event
log, HTTP endpoint, pipeline instrumentation, and the CLI flags.

The two load-bearing contracts:

* **Merge algebra** — registry merge must be order-independent and
  associative (the rollup cube's contract), or the parent's view of
  worker snapshots would depend on worker arrival order.
* **Measurement neutrality** — instrumented pipelines must produce
  byte-identical counters/records to uninstrumented ones, and the
  parallel runtime's merged count metrics must equal a serial run's
  (pinned against the golden trace in ``test_golden_trace.py``).
"""

import json
import random
import signal
import urllib.error
import urllib.request
import os

import pytest

from repro.ml import RandomForestClassifier
from repro.net import Packet, PcapWriter
from repro.obs import (
    COUNT_BUCKETS,
    ComponentHealth,
    EventLog,
    HealthReport,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    read_events,
)
from repro.pipeline import (
    ClassifierBank,
    ConceptDriftMonitor,
    ParallelShardedPipeline,
    RealtimePipeline,
    ingest_pcap,
    save_bank,
)
from repro.fingerprints.model import Provider, Transport
from repro.pipeline.confidence import PlatformPrediction
from repro.trafficgen import generate_lab_dataset


# --- fixtures ---------------------------------------------------------------


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(seed=47, scale=0.04)


@pytest.fixture(scope="module")
def bank(lab):
    return ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=4, max_depth=10, random_state=1))


@pytest.fixture(scope="module")
def bank_dir(bank, tmp_path_factory):
    path = tmp_path_factory.mktemp("obs-bank") / "bank"
    save_bank(bank, path)
    return path


@pytest.fixture(scope="module")
def frames(lab):
    flows = list(lab)[::4][:40]
    out = [(p.to_bytes(), p.timestamp)
           for flow in flows for p in flow.packets]
    out.sort(key=lambda pair: pair[1])
    return out


@pytest.fixture(scope="module")
def pcap(frames, tmp_path_factory):
    path = tmp_path_factory.mktemp("obs-pcap") / "obs.pcap"
    with PcapWriter(path) as writer:
        for data, timestamp in frames:
            writer.write_bytes(data, timestamp)
    return path


# --- registry algebra -------------------------------------------------------


def _random_registry(seed: int) -> MetricsRegistry:
    """A registry with overlapping counter/gauge/histogram families and
    label sets — the shape worker snapshots actually have."""
    rng = random.Random(seed)
    registry = MetricsRegistry()
    for status in ("classified", "partial", "unknown"):
        registry.counter("repro_classifications_total", "by status",
                         {"status": status}).inc(rng.randrange(100))
    registry.counter("repro_packets_total", "pkts").inc(
        rng.randrange(10_000))
    registry.gauge("repro_live_flows", "live").inc(rng.randrange(50))
    hist = registry.histogram("repro_stage_seconds", "stages",
                              {"stage": "classify_drain"})
    for _ in range(rng.randrange(1, 40)):
        hist.observe(rng.random() * 2)
    batch = registry.histogram("repro_classify_batch_flows", "batch",
                               buckets=COUNT_BUCKETS)
    for _ in range(rng.randrange(1, 20)):
        batch.observe(rng.randrange(1, 500))
    return registry


def _merged(*registries) -> dict:
    target = MetricsRegistry()
    for registry in registries:
        target.merge(registry)
    return target.snapshot()


class TestRegistryAlgebra:
    def test_merge_is_order_independent(self):
        a, b = _random_registry(1), _random_registry(2)
        assert _merged(a, b) == _merged(b, a)

    def test_merge_is_associative(self):
        a, b, c = (_random_registry(s) for s in (3, 4, 5))
        left = MetricsRegistry()
        left.merge(a)
        left.merge(b)
        right = MetricsRegistry()
        right.merge(b)
        right.merge(c)
        # (a+b)+c == a+(b+c)
        ab_c = MetricsRegistry()
        ab_c.merge_snapshot(left.snapshot())
        ab_c.merge(c)
        a_bc = MetricsRegistry()
        a_bc.merge(a)
        a_bc.merge_snapshot(right.snapshot())
        assert ab_c.snapshot() == a_bc.snapshot()

    def test_merge_doubles_every_additive_value(self):
        a = _random_registry(6)
        doubled = MetricsRegistry()
        doubled.merge(a)
        doubled.merge(a)
        packets = a.value("repro_packets_total")
        assert doubled.value("repro_packets_total") == 2 * packets
        count, total = a.value("repro_stage_seconds",
                               {"stage": "classify_drain"})
        assert doubled.value("repro_stage_seconds",
                             {"stage": "classify_drain"}) == \
            (2 * count, 2 * total)

    def test_snapshot_is_json_roundtrippable(self):
        a = _random_registry(7)
        wire = json.loads(json.dumps(a.snapshot()))
        rebuilt = MetricsRegistry()
        rebuilt.merge_snapshot(wire)
        assert rebuilt.snapshot() == a.snapshot()

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total", "x")

    def test_bucket_ladder_mismatch_rejected_on_merge(self):
        a = MetricsRegistry()
        a.histogram("repro_h", "h", buckets=(1.0, 2.0)).observe(1.5)
        b = MetricsRegistry()
        b.histogram("repro_h", "h", buckets=(1.0, 2.0, 4.0))
        with pytest.raises(ValueError, match="bucket"):
            b.merge(a)

    def test_nonincreasing_buckets_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(buckets=())

    def test_timed_span_observes(self):
        registry = MetricsRegistry()
        span = registry.timed("repro_stage_seconds", "s",
                              {"stage": "x"})
        for _ in range(3):
            with span:
                pass
        count, total = registry.value("repro_stage_seconds",
                                      {"stage": "x"})
        assert count == 3
        assert total >= 0


class TestExposition:
    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_packets_total", "Frames seen").inc(7)
        hist = registry.histogram("repro_stage_seconds", "Latency",
                                  {"stage": "drain"},
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.render_prometheus()
        assert "# HELP repro_packets_total Frames seen" in text
        assert "# TYPE repro_packets_total counter" in text
        assert "repro_packets_total 7" in text
        # Buckets are cumulative in the exposition (internal storage
        # is per-bucket so merges stay elementwise).
        assert 'repro_stage_seconds_bucket{stage="drain",le="0.1"} 1' \
            in text
        assert 'repro_stage_seconds_bucket{stage="drain",le="1.0"} 2' \
            in text
        assert ('repro_stage_seconds_bucket{stage="drain",le="+Inf"} 3'
                in text)
        assert 'repro_stage_seconds_count{stage="drain"} 3' in text

    def test_to_json_stable_and_parseable(self):
        registry = _random_registry(8)
        parsed = json.loads(registry.to_json())
        assert parsed == registry.snapshot()
        assert registry.to_json() == registry.to_json()


# --- event log --------------------------------------------------------------


class TestEventLog:
    def test_emit_and_read(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            assert log.clock is None
            log.emit("checkpoint", path="ck", consumed=12)
            log.set_clock(120.5)
            log.emit("eviction_sweep", emitted=3)
        events = read_events(path)
        assert [e["event"] for e in events] == ["checkpoint",
                                                "eviction_sweep"]
        assert events[0]["clock"] is None
        assert events[0]["consumed"] == 12
        assert events[1]["clock"] == 120.5
        assert all(e["wall"] > 0 for e in events)

    def test_append_only_across_instances(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("a")
        with EventLog(path) as log:
            log.emit("b")
            assert log.count == 1
        assert [e["event"] for e in read_events(path)] == ["a", "b"]

    def test_emit_after_close_is_counted_noop(self, tmp_path):
        # Shutdown races: a serving thread may emit after the owner
        # closed the log. That must drop (and count), never raise.
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("before")
        log.close()
        log.emit("late", detail=1)
        log.emit("later")
        assert log.dropped == 2
        assert log.count == 1
        assert [e["event"] for e in read_events(path)] == ["before"]

    def test_close_is_idempotent(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.close()
        log.close()
        assert log.dropped == 0


# --- HTTP endpoint ----------------------------------------------------------


def _get(port: int, path: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=10) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


class TestMetricsServer:
    def test_serves_metrics_health_and_404(self):
        registry = MetricsRegistry()
        registry.counter("repro_packets_total", "pkts").inc(42)
        with MetricsServer(lambda: registry, port=0) as server:
            status, body = _get(server.port, "/healthz")
            assert status == 200
            assert json.loads(body) == {"status": "ok"}
            status, body = _get(server.port, "/metrics")
            assert status == 200
            assert b"repro_packets_total 42" in body
            status, body = _get(server.port, "/metrics.json")
            assert status == 200
            assert json.loads(body)["metrics"][0]["value"] == 42
            status, _ = _get(server.port, "/nope")
            assert status == 404

    def test_collect_failure_is_500_and_keeps_serving(self):
        calls = {"n": 0}

        def collect():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("worker wedged")
            registry = MetricsRegistry()
            registry.counter("repro_ok", "ok").inc()
            return registry

        with MetricsServer(collect, port=0) as server:
            status, body = _get(server.port, "/metrics")
            assert status == 500
            assert b"worker wedged" in body
            assert server.last_collect_error == "worker wedged"
            status, body = _get(server.port, "/metrics")
            assert status == 200
            assert b"repro_ok 1" in body
            assert server.last_collect_error is None

    def test_health_callback_drives_healthz(self):
        state = {"ok": True}

        def health():
            return HealthReport((
                ComponentHealth("ingest", state["ok"],
                                "" if state["ok"] else "thread died"),
                ComponentHealth("workers", True)))

        registry = MetricsRegistry()
        with MetricsServer(lambda: registry, port=0,
                           health=health) as server:
            status, body = _get(server.port, "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            state["ok"] = False
            status, body = _get(server.port, "/healthz")
            assert status == 503
            payload = json.loads(body)
            assert payload["status"] == "unhealthy"
            failing = [c for c in payload["components"]
                       if not c["healthy"]]
            assert [c["component"] for c in failing] == ["ingest"]
            assert failing[0]["detail"] == "thread died"

    def test_crashing_health_callback_is_503_not_crash(self):
        def health():
            raise RuntimeError("probe exploded")

        registry = MetricsRegistry()
        with MetricsServer(lambda: registry, port=0,
                           health=health) as server:
            status, body = _get(server.port, "/healthz")
            assert status == 503
            assert b"probe exploded" in body

    def test_mounts_dispatch_by_longest_prefix(self):
        calls = []

        def api(method, path, query, body):
            calls.append((method, path, query, body))
            return 200, b"api", "text/plain"

        def api_sub(method, path, query, body):
            return 200, b"sub", "text/plain"

        def boom(method, path, query, body):
            raise RuntimeError("handler exploded")

        registry = MetricsRegistry()
        with MetricsServer(lambda: registry, port=0) as server:
            server.mount("/api", api)
            server.mount("/api/deep", api_sub)
            server.mount("/boom", boom)
            assert _get(server.port, "/api/x?q=1")[1] == b"api"
            assert calls[0][0] == "GET"
            assert calls[0][2] == {"q": ["1"]}
            assert _get(server.port, "/api/deep/y")[1] == b"sub"
            # built-in paths always win over mounts
            assert _get(server.port, "/metrics")[0] == 200
            status, body = _get(server.port, "/boom")
            assert status == 500
            assert b"handler exploded" in body
            # POST bodies reach the handler
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}/api/z",
                data=b"payload", method="POST")
            with urllib.request.urlopen(request, timeout=10):
                pass
            assert calls[-1][0] == "POST"
            assert calls[-1][3] == b"payload"

    def test_bad_mount_prefix_rejected(self):
        server = MetricsServer(MetricsRegistry, port=0)
        try:
            with pytest.raises(ValueError):
                server.mount("api", lambda *a: (200, b"", "t"))
            with pytest.raises(ValueError):
                server.mount("/api/", lambda *a: (200, b"", "t"))
        finally:
            server.close()


# --- pipeline instrumentation ----------------------------------------------


class TestPipelineInstrumentation:
    def test_instrumentation_never_perturbs_results(self, bank, frames):
        plain = RealtimePipeline(bank, batch_size=8)
        inst = RealtimePipeline(bank, batch_size=8, metrics=True)
        for pipeline in (plain, inst):
            pipeline.process_frames(frames)
            pipeline.flush()
        assert inst.counters == plain.counters
        assert list(inst.store) == list(plain.store)

    def test_raw_mode_records_promotions_and_spans(self, bank, frames):
        pipeline = RealtimePipeline(bank, batch_size=8, metrics=True)
        pipeline.process_frames(frames)
        pipeline.flush()
        registry = pipeline.export_metrics()
        assert registry.value("repro_promotions_total") > 0
        drains, total = registry.value("repro_stage_seconds",
                                       {"stage": "classify_drain"})
        assert drains > 0 and total > 0
        batches, flows = registry.value("repro_classify_batch_flows")
        assert batches == drains
        assert flows == pipeline.counters.classified + \
            pipeline.counters.partial + pipeline.counters.unknown

    def test_eager_mode_promotions_stay_zero(self, bank, frames):
        pipeline = RealtimePipeline(bank, batch_size=8, metrics=True)
        for data, timestamp in frames:
            pipeline.process_packet(Packet.from_bytes(data, timestamp))
        pipeline.flush()
        # Eager mode builds full Packets up front: the promotion
        # counter is structurally zero (which is why promotions live
        # in the obs registry, not in PipelineCounters — they would
        # break the eager==raw counter equality otherwise).
        assert pipeline.export_metrics().value(
            "repro_promotions_total") == 0

    def test_eviction_sweep_counts_and_times(self, bank, frames):
        pipeline = RealtimePipeline(bank, batch_size=8, metrics=True)
        pipeline.process_frames(frames)
        last = max(t for _, t in frames)
        emitted = pipeline.flush_idle(now=last + 10_000.0,
                                      idle_timeout=60.0)
        registry = pipeline.export_metrics()
        assert pipeline.counters.evicted == emitted > 0
        assert registry.value("repro_evicted_flows_total") == \
            pipeline.counters.evicted
        sweeps, _ = registry.value("repro_stage_seconds",
                                   {"stage": "eviction_sweep"})
        assert sweeps == 1

    def test_export_derives_counts_even_when_disabled(self, bank,
                                                      frames):
        """Count metrics come from PipelineCounters at export time, so
        an uninstrumented pipeline still exports them — only timing
        spans need metrics=True."""
        pipeline = RealtimePipeline(bank, batch_size=8)
        pipeline.process_frames(frames)
        pipeline.flush()
        registry = pipeline.export_metrics()
        assert registry.value("repro_packets_total") == \
            pipeline.counters.packets
        assert registry.value("repro_stage_seconds",
                              {"stage": "classify_drain"}) is None

    def test_export_is_idempotent(self, bank, frames):
        pipeline = RealtimePipeline(bank, batch_size=8, metrics=True)
        pipeline.process_frames(frames)
        pipeline.flush()
        assert pipeline.export_metrics().snapshot() == \
            pipeline.export_metrics().snapshot()


def _prediction(confidence: float) -> PlatformPrediction:
    status = "classified" if confidence >= 0.8 else "unknown"
    return PlatformPrediction(
        status=status,
        platform="windows_chrome" if status == "classified" else None,
        device="windows" if status == "classified" else None,
        agent="chrome" if status == "classified" else None,
        confidence=confidence, device_confidence=confidence,
        agent_confidence=confidence)


class TestDriftAlarmHook:
    def test_on_alarm_fires_once_per_transition(self):
        fired = []
        monitor = ConceptDriftMonitor(
            ph_delta=0.01, ph_threshold=0.5,
            on_alarm=lambda p, t: fired.append((p, t)))
        scenario = (Provider.YOUTUBE, Transport.TCP)

        def shift():
            # Page–Hinkley alarms on a *mean shift*, so drive a
            # healthy stream into a degraded one.
            for _ in range(50):
                monitor.observe(*scenario, _prediction(0.95))
            for _ in range(50):
                monitor.observe(*scenario, _prediction(0.3))

        shift()
        assert fired == [scenario]
        # Sticky state: further low-confidence flow does not re-fire.
        monitor.observe(*scenario, _prediction(0.3))
        assert len(fired) == 1
        # reset() re-arms the transition.
        monitor.reset(*scenario)
        shift()
        assert fired == [scenario, scenario]


# --- ingest events ----------------------------------------------------------


class TestIngestEvents:
    def test_sweep_checkpoint_and_resume_events(self, bank, frames,
                                                pcap, tmp_path):
        events_path = tmp_path / "events.jsonl"
        ck = tmp_path / "ck"
        span = max(frames[-1][1] - frames[0][1], 1.0)
        schedule = dict(idle_timeout=span / 3,
                        checkpoint_interval=span / 6)
        pipeline = RealtimePipeline(bank, batch_size=8)
        with EventLog(events_path) as log:
            ingest_pcap(pipeline, pcap, checkpoint_dir=ck,
                        events=log, **schedule)
        pipeline.flush()
        events = read_events(events_path)
        kinds = {e["event"] for e in events}
        assert "eviction_sweep" in kinds
        assert "checkpoint" in kinds
        checkpoint = next(e for e in events
                          if e["event"] == "checkpoint")
        assert checkpoint["path"] == str(ck)
        assert checkpoint["consumed"] > 0
        assert checkpoint["duration_seconds"] >= 0
        # Every mid-replay event carries the capture clock.
        assert all(e["clock"] is not None for e in events)

        # Resume from the checkpoint: the operator-visible signature
        # of a *planned* restart is an ingest_resume event.
        resumed = RealtimePipeline.restore(ck, bank)
        resume_events = tmp_path / "resume.jsonl"
        with EventLog(resume_events) as log:
            ingest_pcap(resumed, pcap, checkpoint_dir=ck,
                        resume_dir=ck, events=log, **schedule)
        resumed.flush()
        resume = read_events(resume_events)[0]
        assert resume["event"] == "ingest_resume"
        assert resume["consumed"] > 0
        assert resume["resume_dir"] == str(ck)


# --- parallel runtime -------------------------------------------------------


class TestParallelObservability:
    def test_worker_respawn_event_and_metrics(self, bank_dir, frames,
                                              tmp_path):
        """SIGKILL a worker mid-replay: recovery must leave an
        operator-distinguishable trace — a worker_respawn event with
        journal-replay accounting, and the respawn/replay counters —
        so crash recovery never masquerades as a clean run."""
        events_path = tmp_path / "events.jsonl"
        k = len(frames) // 2
        with EventLog(events_path) as log, \
                ParallelShardedPipeline(
                    bank_dir, num_workers=2, batch_size=8,
                    checkpoint_dir=tmp_path / "ck", chunk_items=16,
                    metrics=True, events=log) as par:
            par.process_frames(frames[:k])
            par.save_checkpoint()
            par.process_frames(frames[k:k + 40])
            victim = par._workers[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            par.process_frames(frames[k + 40:])
            par.flush()
            registry = par.export_metrics()
            assert registry.value("repro_worker_respawns_total") >= 1
            replayed = registry.value(
                "repro_journal_replayed_commands_total")
            recoveries, elapsed = registry.value(
                "repro_journal_replay_seconds")
            assert recoveries >= 1 and elapsed > 0
        respawns = [e for e in read_events(events_path)
                    if e["event"] == "worker_respawn"]
        assert len(respawns) >= 1
        assert respawns[0]["worker"] == 1
        assert respawns[0]["replayed_commands"] == replayed
        assert respawns[0]["replay_seconds"] > 0
        assert "cause" in respawns[0]

    def test_shard_live_flows_and_worker_timings(self, bank_dir,
                                                 frames):
        with ParallelShardedPipeline(bank_dir, num_workers=2,
                                     batch_size=8,
                                     metrics=True) as par:
            par.process_frames(frames)
            per_shard = par.shard_live_flows
            assert len(per_shard) == 2
            assert sum(per_shard) == par.live_flows
            par.flush()
            registry = par.export_metrics()
            # Per-shard gauges labeled by the parent.
            total = sum(
                registry.value("repro_shard_live_flows",
                               {"shard": str(i)}) for i in range(2))
            assert total == par.live_flows
            # Worker-side timing registries merged through the sync
            # barrier: both workers drained at least once.
            drains, _ = registry.value("repro_stage_seconds",
                                       {"stage": "classify_drain"})
            assert drains >= 2


# --- CLI --------------------------------------------------------------------


class TestCliObservability:
    @pytest.fixture(scope="class")
    def cli_out(self, bank_dir, pcap, tmp_path_factory):
        """One classify run per worker count over the shm transport,
        each with --metrics-out and --event-log."""
        from repro.cli import main

        root = tmp_path_factory.mktemp("cli-obs")
        outputs = {}
        for workers in (1, 2, 4):
            prom = root / f"metrics-{workers}.prom"
            events = root / f"events-{workers}.jsonl"
            rc = main(["classify", "--bank", str(bank_dir),
                       "--pcap", str(pcap),
                       "--workers", str(workers), "--transport", "shm",
                       "--ingest", "bulk", "--idle-timeout", "120",
                       "--metrics-out", str(prom),
                       "--event-log", str(events), "--limit", "2"])
            assert rc == 0
            outputs[workers] = (prom.read_text(), events)
        return outputs

    def test_flags_work_across_worker_counts(self, cli_out):
        for workers, (text, events) in cli_out.items():
            assert "# TYPE repro_packets_total counter" in text
            assert events.exists()

    def test_metric_values_identical_across_worker_counts(self,
                                                          cli_out):
        def count_lines(text):
            return sorted(
                line for line in text.splitlines()
                if not line.startswith("#")
                and line.split("{")[0].split(" ")[0] in (
                    "repro_packets_total", "repro_flows_total",
                    "repro_video_flows_total",
                    "repro_classifications_total",
                    "repro_evicted_flows_total"))

        base = count_lines(cli_out[1][0])
        assert count_lines(cli_out[2][0]) == base
        assert count_lines(cli_out[4][0]) == base

    def test_metrics_out_json_flavor(self, bank_dir, pcap, tmp_path):
        from repro.cli import main

        out = tmp_path / "metrics.json"
        assert main(["classify", "--bank", str(bank_dir),
                     "--pcap", str(pcap),
                     "--metrics-out", str(out), "--limit", "1"]) == 0
        parsed = json.loads(out.read_text())
        assert parsed["format_version"] == 1
        assert any(m["name"] == "repro_packets_total"
                   for m in parsed["metrics"])

    def test_metrics_port_serves_during_campus(self, bank_dir, capsys,
                                               tmp_path):
        from repro.cli import main

        assert main(["campus", "--bank", str(bank_dir),
                     "--sessions", "20", "--seed", "3",
                     "--metrics-port", "0"]) == 0
        err = capsys.readouterr().err
        assert "Serving metrics on http://127.0.0.1:" in err
