"""Tests for the QUIC substrate: varints, transport parameters, Initial
packet protection (including the RFC 9001 Appendix A key schedule, already
covered in test_crypto_hkdf, exercised here end-to-end)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CryptoError, ParseError
from repro.quic import (
    MIN_CLIENT_INITIAL_SIZE,
    QuicInitial,
    TransportParameters,
    TransportParametersBuilder,
    build_crypto_frame,
    decode_varint,
    derive_initial_keys,
    encode_varint,
    extract_crypto_stream,
    is_quic_long_header,
    protect_client_initial,
    unprotect_client_initial,
)
from repro.quic import transport_params as tp


class TestVarint:
    def test_rfc9000_examples(self):
        # Examples from RFC 9000 §A.1.
        assert decode_varint(bytes.fromhex("c2197c5eff14e88c"))[0] == \
            151288809941952652
        assert decode_varint(bytes.fromhex("9d7f3e7d"))[0] == 494878333
        assert decode_varint(bytes.fromhex("7bbd"))[0] == 15293
        assert decode_varint(bytes.fromhex("25"))[0] == 37

    def test_encode_lengths(self):
        assert len(encode_varint(63)) == 1
        assert len(encode_varint(64)) == 2
        assert len(encode_varint(16383)) == 2
        assert len(encode_varint(16384)) == 4
        assert len(encode_varint((1 << 30) - 1)) == 4
        assert len(encode_varint(1 << 30)) == 8

    def test_out_of_range(self):
        with pytest.raises(ParseError):
            encode_varint(1 << 62)
        with pytest.raises(ParseError):
            encode_varint(-1)

    def test_truncated(self):
        with pytest.raises(ParseError):
            decode_varint(b"\xc0\x00")

    @given(st.integers(min_value=0, max_value=(1 << 62) - 1))
    def test_roundtrip(self, value):
        encoded = encode_varint(value)
        decoded, used = decode_varint(encoded)
        assert decoded == value
        assert used == len(encoded)


class TestTransportParameters:
    def _chrome_like(self) -> TransportParameters:
        return (
            TransportParametersBuilder()
            .varint(tp.TP_MAX_IDLE_TIMEOUT, 30000)
            .varint(tp.TP_MAX_UDP_PAYLOAD_SIZE, 1472)
            .varint(tp.TP_INITIAL_MAX_DATA, 15728640)
            .varint(tp.TP_INITIAL_MAX_STREAM_DATA_BIDI_LOCAL, 6291456)
            .varint(tp.TP_INITIAL_MAX_STREAMS_BIDI, 100)
            .varint(tp.TP_MAX_ACK_DELAY, 25)
            .flag(tp.TP_DISABLE_ACTIVE_MIGRATION)
            .connection_id(tp.TP_INITIAL_SOURCE_CONNECTION_ID, bytes(8))
            .flag(tp.TP_GREASE_QUIC_BIT)
            .utf8(tp.TP_USER_AGENT, "Chrome/124.0.6367.60 Windows NT 10.0")
            .version_information(0x00000001, [0x00000001, 0x6B3343CF])
            .build()
        )

    def test_roundtrip(self):
        params = self._chrome_like()
        assert TransportParameters.parse(params.to_bytes()) == params

    def test_accessors(self):
        params = self._chrome_like()
        assert params.get_varint(tp.TP_MAX_IDLE_TIMEOUT) == 30000
        assert params.get_varint(tp.TP_MAX_ACK_DELAY) == 25
        assert params.has(tp.TP_DISABLE_ACTIVE_MIGRATION)
        assert not params.has(tp.TP_INITIAL_RTT)
        assert params.get_varint(tp.TP_INITIAL_RTT) is None
        assert "Chrome" in params.get_utf8(tp.TP_USER_AGENT)
        assert len(params.get(tp.TP_INITIAL_SOURCE_CONNECTION_ID)) == 8

    def test_order_preserved(self):
        params = self._chrome_like()
        assert params.ids[0] == tp.TP_MAX_IDLE_TIMEOUT
        assert params.ids[-1] == tp.TP_VERSION_INFORMATION

    def test_truncated_value_rejected(self):
        raw = self._chrome_like().to_bytes()
        with pytest.raises(ParseError):
            TransportParameters.parse(raw[:-1])

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=10000),
        st.binary(max_size=32),
    ), max_size=10))
    def test_roundtrip_property(self, entries):
        params = TransportParameters(tuple(entries))
        assert TransportParameters.parse(params.to_bytes()) == params


class TestCryptoFrames:
    def test_single_frame_roundtrip(self):
        data = b"\x01" * 300
        frame = build_crypto_frame(data)
        assert extract_crypto_stream(frame) == data

    def test_frames_with_padding_and_ping(self):
        data = b"client hello bytes"
        payload = bytes(20) + build_crypto_frame(data) + b"\x01" + bytes(5)
        assert extract_crypto_stream(payload) == data

    def test_out_of_order_offsets(self):
        part1 = b"AAAA"
        part2 = b"BBBB"
        payload = (build_crypto_frame(part2, offset=4)
                   + build_crypto_frame(part1, offset=0))
        assert extract_crypto_stream(payload) == b"AAAABBBB"

    def test_gap_rejected(self):
        payload = build_crypto_frame(b"BBBB", offset=10)
        with pytest.raises(ParseError):
            extract_crypto_stream(payload)

    def test_unknown_frame_rejected(self):
        with pytest.raises(ParseError):
            extract_crypto_stream(b"\x1c\x00")

    def test_empty_payload_rejected(self):
        with pytest.raises(ParseError):
            extract_crypto_stream(bytes(50))


class TestInitialProtection:
    DCID = bytes.fromhex("8394c8f03e515708")

    def _initial(self, payload: bytes | None = None) -> QuicInitial:
        if payload is None:
            payload = build_crypto_frame(b"\x01\x00\x00\x10" + bytes(16))
        return QuicInitial(dcid=self.DCID, scid=b"\x01\x02\x03\x04",
                           payload=payload, packet_number=2)

    def test_roundtrip(self):
        initial = self._initial()
        wire = protect_client_initial(initial)
        out = unprotect_client_initial(wire)
        assert out.dcid == self.DCID
        assert out.scid == b"\x01\x02\x03\x04"
        assert out.packet_number == 2
        assert out.payload.startswith(initial.payload)

    def test_min_datagram_size_enforced(self):
        wire = protect_client_initial(self._initial())
        assert len(wire) >= MIN_CLIENT_INITIAL_SIZE

    def test_crypto_stream_recovered(self):
        chlo = b"\x01\x00\x00\x20" + bytes(32)
        initial = self._initial(build_crypto_frame(chlo))
        out = unprotect_client_initial(protect_client_initial(initial))
        assert out.crypto_stream == chlo

    def test_wire_is_actually_encrypted(self):
        chlo = b"SECRET-CLIENT-HELLO-MARKER"
        initial = self._initial(build_crypto_frame(chlo))
        wire = protect_client_initial(initial)
        assert chlo not in wire

    def test_header_protection_hides_pn(self):
        # Same packet with different packet numbers must differ in the
        # protected first byte region only probabilistically; just check
        # the unprotected pn survives.
        for pn in (0, 1, 255, 7000):
            initial = QuicInitial(dcid=self.DCID, scid=b"ab",
                                  payload=build_crypto_frame(bytes(40)),
                                  packet_number=pn)
            out = unprotect_client_initial(
                protect_client_initial(initial, pn_length=4))
            assert out.packet_number == pn

    def test_corrupted_packet_fails_auth(self):
        wire = bytearray(protect_client_initial(self._initial()))
        wire[-1] ^= 0xFF
        with pytest.raises(CryptoError):
            unprotect_client_initial(bytes(wire))

    def test_short_header_rejected(self):
        with pytest.raises(ParseError):
            unprotect_client_initial(b"\x40" + bytes(100))

    def test_wrong_version_rejected(self):
        wire = bytearray(protect_client_initial(self._initial()))
        wire[1:5] = (2).to_bytes(4, "big")
        with pytest.raises(ParseError):
            unprotect_client_initial(bytes(wire))

    def test_is_quic_long_header(self):
        wire = protect_client_initial(self._initial())
        assert is_quic_long_header(wire)
        assert not is_quic_long_header(b"\x17\x03\x03\x00\x10" + bytes(16))

    def test_keys_depend_on_dcid(self):
        a = derive_initial_keys(b"\x01" * 8)
        b = derive_initial_keys(b"\x02" * 8)
        assert a.key != b.key
        assert a.hp != b.hp

    @given(dcid=st.binary(min_size=8, max_size=20),
           scid=st.binary(min_size=0, max_size=20),
           pn=st.integers(min_value=0, max_value=0xFFFFFF),
           body=st.binary(min_size=1, max_size=600))
    def test_roundtrip_property(self, dcid, scid, pn, body):
        initial = QuicInitial(dcid=dcid, scid=scid,
                              payload=build_crypto_frame(body),
                              packet_number=pn)
        out = unprotect_client_initial(
            protect_client_initial(initial, pn_length=4))
        assert out.dcid == dcid
        assert out.scid == scid
        assert out.packet_number == pn
        assert out.crypto_stream == body
