"""Equivalence suite: the batched classification path must be
byte-identical to the per-flow reference path.

Every fast path introduced for throughput — the packed-forest
``predict_proba``, ``ClassifierBank.classify_batch``, and the buffered
``RealtimePipeline`` — is held against the per-flow reference here:
identical predictions (exact float equality), identical counters, and
identical telemetry across all five scenarios, mixed providers,
open-set platforms, and non-video flows. Future optimizations must keep
these tests green; the reference path is the oracle.
"""

from itertools import chain, zip_longest

import numpy as np
import pytest

from repro.features.extract import extract_attributes, parse_flow_handshake
from repro.fingerprints import Provider, Transport, UserPlatform, get_profile
from repro.fingerprints.providers import detect_provider
from repro.ml import RandomForestClassifier
from repro.pipeline import SCENARIOS, ClassifierBank, RealtimePipeline
from repro.trafficgen import (
    CampusConfig,
    CampusWorkload,
    FlowBuildRequest,
    FlowFactory,
    generate_lab_dataset,
    generate_openset_dataset,
)
from repro.util import SeededRNG


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(seed=21, scale=0.08)


@pytest.fixture(scope="module")
def bank(lab):
    return ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=8, max_depth=16, random_state=1),
    )


@pytest.fixture(scope="module")
def mixed_flows(lab):
    """Mixed-provider corpus: every scenario, open-set platforms, a
    non-video flow, and a truncated flow."""
    flows = list(lab)[::7][:120]  # stride through the provider blocks
    flows += list(generate_openset_dataset(seed=5, flows_per_pair=2))[:20]
    factory = FlowFactory(SeededRNG(4))
    profile = get_profile(UserPlatform.from_label("windows_chrome"),
                          Provider.YOUTUBE)
    flows.append(factory.build(FlowBuildRequest(
        platform_label="windows_chrome", provider=Provider.YOUTUBE,
        transport=Transport.TCP, profile=profile,
        sni="www.wikipedia.org")))
    return flows


def interleaved_packets(flows):
    """Round-robin the flows' packets so flow state interleaves in the
    flow table like a real tap."""
    rows = zip_longest(*[flow.packets for flow in flows])
    return [p for row in rows for p in row if p is not None]


class TestForestEquivalence:
    def test_packed_equals_reference(self, lab, bank):
        for key in bank.scenarios:
            scenario = bank.scenario(*key)
            samples = []
            for flow in lab.subset(provider=key[0], transport=key[1]):
                record = parse_flow_handshake(flow.packets)
                samples.append(extract_attributes(record))
                if len(samples) >= 40:
                    break
            rows = scenario.encoder.transform(samples)
            for model in (scenario.platform_model, scenario.device_model,
                          scenario.agent_model):
                packed = model.predict_proba(rows)
                reference = model.predict_proba_reference(rows)
                assert np.array_equal(packed, reference)

    def test_batch_equals_row_by_row(self, lab, bank):
        key = (Provider.NETFLIX, Transport.TCP)
        scenario = bank.scenario(*key)
        samples = []
        for flow in lab.subset(provider=key[0], transport=key[1]):
            samples.append(extract_attributes(
                parse_flow_handshake(flow.packets)))
            if len(samples) >= 30:
                break
        rows = scenario.encoder.transform(samples)
        batch = scenario.platform_model.predict_proba(rows)
        singles = np.vstack([
            scenario.platform_model.predict_proba(rows[i:i + 1])
            for i in range(len(rows))
        ])
        assert np.array_equal(batch, singles)


class TestClassifyBatchEquivalence:
    def _items(self, lab):
        items = []
        for flow in list(lab)[::5]:
            record = parse_flow_handshake(flow.packets)
            provider = detect_provider(record.sni)
            items.append((provider, record.transport,
                          extract_attributes(record)))
        return items

    def test_matches_per_flow_classify(self, lab, bank):
        items = self._items(lab)
        scenarios_hit = {(p, t) for p, t, _ in items}
        assert scenarios_hit == set(SCENARIOS)  # all five scenarios
        batch = bank.classify_batch(items)
        reference = [bank.classify(p, t, a) for p, t, a in items]
        assert batch == reference

    def test_scenario_classify_rows_vs_attributes(self, lab, bank):
        for key in bank.scenarios:
            scenario = bank.scenario(*key)
            samples = []
            for flow in lab.subset(provider=key[0], transport=key[1]):
                samples.append(extract_attributes(
                    parse_flow_handshake(flow.packets)))
                if len(samples) >= 20:
                    break
            rows = scenario.encoder.transform(samples)
            batch = scenario.classify_rows(rows)
            singles = [scenario.classify_attributes(s) for s in samples]
            assert batch == singles

    def test_empty_batch(self, bank):
        assert bank.classify_batch([]) == []


class TestPipelineBatchEquivalence:
    def test_packet_mode_buffered_equals_reference(self, bank,
                                                   mixed_flows):
        packets = interleaved_packets(mixed_flows)
        reference = RealtimePipeline(bank, batch_size=1)
        buffered = RealtimePipeline(bank, batch_size=64)
        for packet in packets:
            reference.process_packet(packet)
        for packet in packets:
            buffered.process_packet(packet)
        assert reference.flush() == buffered.flush()
        assert buffered.counters == reference.counters
        assert list(buffered.store) == list(reference.store)

    @pytest.mark.parametrize("batch_size", [2, 7, 32, 1000])
    def test_batch_size_invariant(self, bank, mixed_flows, batch_size):
        packets = interleaved_packets(mixed_flows[:60])
        reference = RealtimePipeline(bank, batch_size=1)
        buffered = RealtimePipeline(bank, batch_size=batch_size)
        for packet in packets:
            reference.process_packet(packet)
            buffered.process_packet(packet)
        reference.flush()
        buffered.flush()
        assert buffered.counters == reference.counters
        assert list(buffered.store) == list(reference.store)

    def test_flush_drains_pending(self, bank, lab):
        pipeline = RealtimePipeline(bank, batch_size=10_000)
        flows = list(lab)[:30]
        for packet in chain.from_iterable(f.packets for f in flows):
            pipeline.process_packet(packet)
        # Nothing classified yet — the buffer never filled.
        assert pipeline.pending_classifications == len(flows)
        assert pipeline.counters.classified == 0
        emitted = pipeline.flush()
        assert emitted == len(flows)
        assert pipeline.pending_classifications == 0
        assert (pipeline.counters.classified + pipeline.counters.partial
                + pipeline.counters.unknown) == len(flows)

    def test_explicit_drain(self, bank, lab):
        pipeline = RealtimePipeline(bank, batch_size=10_000)
        flows = list(lab)[:10]
        for packet in chain.from_iterable(f.packets for f in flows):
            pipeline.process_packet(packet)
        assert pipeline.drain() == len(flows)
        assert pipeline.drain() == 0  # idempotent when empty
        assert pipeline.pending_classifications == 0

    def test_flow_mode_batched_equals_reference(self, bank):
        workload = CampusWorkload(CampusConfig(days=1,
                                               sessions_per_day=50,
                                               seed=17))
        flows = list(workload.flows())
        reference = RealtimePipeline(bank, batch_size=1)
        batched = RealtimePipeline(bank, batch_size=32)
        n_ref = reference.process_flows(flows)
        n_bat = batched.process_flows(flows)
        assert n_bat == n_ref
        assert batched.counters == reference.counters
        assert list(batched.store) == list(reference.store)

    def test_bad_batch_size_rejected(self, bank):
        with pytest.raises(ValueError):
            RealtimePipeline(bank, batch_size=0)
