"""Tests for the from-scratch ML substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, DatasetError, NotFittedError
from repro.ml import (
    DecisionTreeClassifier,
    KNeighborsClassifier,
    LabelEncoder,
    MLPClassifier,
    RandomForestClassifier,
    StratifiedKFold,
    accuracy_score,
    best_result,
    box_stats,
    confidence_summary,
    confusion_matrix,
    cross_val_predict,
    cross_val_score,
    grid_search,
    normalized_confusion,
    per_class_accuracy,
)


def _blobs(n_per_class=60, n_classes=3, d=6, seed=0, spread=0.6):
    """Well-separated Gaussian blobs."""
    rng = np.random.default_rng(seed)
    X, y = [], []
    for c in range(n_classes):
        center = rng.normal(0, 4, size=d)
        X.append(center + rng.normal(0, spread, size=(n_per_class, d)))
        y += [f"class{c}"] * n_per_class
    return np.vstack(X), y


def _xor(n=200, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ["pos" if (a > 0) != (b > 0) else "neg" for a, b in X]
    return X, y


class TestLabelEncoder:
    def test_roundtrip(self):
        enc = LabelEncoder()
        codes = enc.fit_transform(["b", "a", "b", "c"])
        assert enc.classes_ == ["a", "b", "c"]
        assert list(codes) == [1, 0, 1, 2]
        assert enc.inverse_transform(codes) == ["b", "a", "b", "c"]

    def test_unseen_label(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(DatasetError):
            enc.transform(["z"])


class TestDecisionTree:
    def test_separable_blobs(self):
        X, y = _blobs()
        tree = DecisionTreeClassifier(max_depth=10).fit(X, y)
        assert tree.score(X, y) > 0.99

    def test_xor_needs_depth(self):
        X, y = _xor()
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert deep.score(X, y) > shallow.score(X, y)

    def test_predict_proba_rows_sum_to_one(self):
        X, y = _blobs()
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (len(X), 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_min_samples_leaf_respected(self):
        X, y = _blobs(n_per_class=20)
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(X, y)
        # Leaves hold class distributions; with large leaves the tree
        # must stay small.
        assert tree.node_count < 30

    def test_pure_node_stops(self):
        X = np.zeros((10, 3))
        y = ["only"] * 10
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 1
        assert tree.predict(X) == ["only"] * 10

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict_proba(np.zeros((1, 2)))

    def test_bad_max_features(self):
        X, y = _blobs(n_per_class=5)
        with pytest.raises(DatasetError):
            DecisionTreeClassifier(max_features=1.5).fit(X, y)

    def test_mismatched_shapes(self):
        with pytest.raises(DatasetError):
            DecisionTreeClassifier().fit(np.zeros((4, 2)), ["a"] * 3)


class TestRandomForest:
    def test_beats_single_tree_on_noisy_data(self):
        rng = np.random.default_rng(3)
        X, y = _blobs(spread=3.0, seed=3)
        noise = rng.normal(0, 5, size=(len(X), 10))
        Xn = np.hstack([X, noise])
        holdout_X, holdout_y = Xn[::3], y[::3]
        train_idx = [i for i in range(len(y)) if i % 3]
        train_X = Xn[train_idx]
        train_y = [y[i] for i in train_idx]
        tree = DecisionTreeClassifier(max_depth=None, random_state=1,
                                      max_features="sqrt")
        forest = RandomForestClassifier(n_estimators=25, max_depth=None,
                                        random_state=1)
        tree.fit(train_X, train_y)
        forest.fit(train_X, train_y)
        assert forest.score(holdout_X, holdout_y) >= \
            tree.score(holdout_X, holdout_y)

    def test_proba_shape_and_classes(self):
        X, y = _blobs()
        forest = RandomForestClassifier(n_estimators=8).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (len(X), 3)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert forest.classes_ == ["class0", "class1", "class2"]

    def test_deterministic_given_seed(self):
        X, y = _blobs(seed=7)
        a = RandomForestClassifier(n_estimators=5, random_state=11)
        b = RandomForestClassifier(n_estimators=5, random_state=11)
        assert a.fit(X, y).predict(X) == b.fit(X, y).predict(X)

    def test_class_missing_from_bootstrap_ok(self):
        # Tiny minority class: bootstraps will often miss it entirely.
        X = np.vstack([np.zeros((40, 2)), np.ones((2, 2)) * 9])
        y = ["maj"] * 40 + ["min"] * 2
        forest = RandomForestClassifier(n_estimators=12,
                                        random_state=0).fit(X, y)
        proba = forest.predict_proba(np.array([[9.0, 9.0]]))
        assert proba.shape == (1, 2)


class TestMLP:
    def test_learns_blobs(self):
        X, y = _blobs(seed=5)
        mlp = MLPClassifier(hidden_layer_sizes=(32,), max_iter=40,
                            random_state=5).fit(X, y)
        assert mlp.score(X, y) > 0.9

    def test_learns_xor(self):
        X, y = _xor(400, seed=2)
        mlp = MLPClassifier(hidden_layer_sizes=(32, 16), max_iter=150,
                            random_state=2).fit(X, y)
        assert mlp.score(X, y) > 0.9

    def test_proba_normalized(self):
        X, y = _blobs()
        mlp = MLPClassifier(max_iter=5).fit(X, y)
        proba = mlp.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_bad_activation(self):
        with pytest.raises(ConfigError):
            MLPClassifier(activation="sigmoidal")

    def test_tanh_works(self):
        X, y = _blobs(n_per_class=30)
        mlp = MLPClassifier(activation="tanh", max_iter=30).fit(X, y)
        assert mlp.score(X, y) > 0.8


class TestKNN:
    def test_blobs(self):
        X, y = _blobs()
        knn = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        assert knn.score(X, y) > 0.95

    def test_distance_weights_memorize(self):
        X, y = _blobs(n_per_class=15)
        knn = KNeighborsClassifier(n_neighbors=5,
                                   weights="distance").fit(X, y)
        assert knn.score(X, y) == 1.0  # training point distance ~0

    def test_k_larger_than_dataset(self):
        X = np.arange(6, dtype=float).reshape(3, 2)
        knn = KNeighborsClassifier(n_neighbors=50).fit(X, ["a", "b", "a"])
        proba = knn.predict_proba(X)
        assert proba.shape == (3, 2)

    def test_bad_weights(self):
        with pytest.raises(ConfigError):
            KNeighborsClassifier(weights="quadratic")


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score(["a", "b"], ["a", "a"]) == 0.5
        assert accuracy_score([], []) == 0.0

    def test_confusion_matrix(self):
        matrix, labels = confusion_matrix(
            ["a", "a", "b"], ["a", "b", "b"])
        assert labels == ["a", "b"]
        assert matrix.tolist() == [[1, 1], [0, 1]]

    def test_normalized_confusion(self):
        matrix, _ = confusion_matrix(["a", "a", "b", "b"],
                                     ["a", "b", "b", "b"])
        norm = normalized_confusion(matrix)
        assert norm[0].tolist() == [0.5, 0.5]
        assert norm[1].tolist() == [0.0, 1.0]

    def test_per_class_accuracy(self):
        acc = per_class_accuracy(["a", "a", "b"], ["a", "a", "a"])
        assert acc["a"] == 1.0 and acc["b"] == 0.0

    def test_confidence_summary(self):
        summary = confidence_summary(
            ["a", "a", "b"], ["a", "b", "b"], [0.9, 0.4, 0.8])
        assert summary.median_correct == pytest.approx(0.85)
        assert summary.median_incorrect == pytest.approx(0.4)
        assert summary.n_correct == 2 and summary.n_incorrect == 1

    def test_box_stats(self):
        stats = box_stats([1, 2, 3, 4, 5])
        assert stats["median"] == 3.0
        assert stats["q1"] == 2.0 and stats["q3"] == 4.0


class TestModelSelection:
    def test_stratified_folds_cover_everything_once(self):
        y = ["a"] * 30 + ["b"] * 20 + ["c"] * 10
        seen = []
        for train, test in StratifiedKFold(5, random_state=1).split(y):
            assert set(train) | set(test) == set(range(60))
            assert not set(train) & set(test)
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(60))

    def test_stratification_balances_classes(self):
        y = ["a"] * 50 + ["b"] * 50
        for _, test in StratifiedKFold(5, random_state=0).split(y):
            labels = [y[i] for i in test]
            assert labels.count("a") == 10
            assert labels.count("b") == 10

    def test_small_class_spread(self):
        y = ["a"] * 30 + ["rare"] * 2
        folds = list(StratifiedKFold(5, random_state=0).split(y))
        assert len(folds) == 5

    def test_cross_val_score_high_on_separable(self):
        X, y = _blobs()
        scores = cross_val_score(
            lambda: DecisionTreeClassifier(max_depth=8), X, y, n_splits=4)
        assert len(scores) == 4
        assert np.mean(scores) > 0.95

    def test_cross_val_predict_aligned(self):
        X, y = _blobs(n_per_class=20)
        preds, conf = cross_val_predict(
            lambda: RandomForestClassifier(n_estimators=5), X, y,
            n_splits=3, with_proba=True)
        assert len(preds) == len(y)
        assert all(p is not None for p in preds)
        assert ((conf > 0) & (conf <= 1.0)).all()

    def test_grid_search_finds_better_depth(self):
        X, y = _xor(300, seed=4)
        results = grid_search(
            lambda max_depth: DecisionTreeClassifier(max_depth=max_depth),
            {"max_depth": [1, 8]}, X, y, n_splits=3)
        best = best_result(results)
        assert best.params["max_depth"] == 8

    def test_invalid_splits(self):
        with pytest.raises(DatasetError):
            StratifiedKFold(1)


class TestTreeProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_forest_proba_valid(self, seed):
        X, y = _blobs(n_per_class=12, seed=seed)
        forest = RandomForestClassifier(
            n_estimators=4, max_depth=5, random_state=seed).fit(X, y)
        proba = forest.predict_proba(X)
        assert (proba >= 0).all()
        assert np.allclose(proba.sum(axis=1), 1.0)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_tree_training_accuracy_nondecreasing_in_depth(self, seed):
        X, y = _blobs(n_per_class=15, seed=seed, spread=2.0)
        accs = [DecisionTreeClassifier(max_depth=d, random_state=seed)
                .fit(X, y).score(X, y) for d in (1, 3, 9)]
        assert accs[0] <= accs[1] + 1e-9 <= accs[2] + 2e-9


class TestFeatureImportances:
    def test_informative_feature_ranks_first(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, size=(300, 5))
        y = ["hi" if x > 0 else "lo" for x in X[:, 2]]
        forest = RandomForestClassifier(n_estimators=10,
                                        random_state=0).fit(X, y)
        importances = forest.feature_importances_
        assert importances.shape == (5,)
        assert np.argmax(importances) == 2
        assert importances.sum() == pytest.approx(1.0)

    def test_tree_importances_normalized(self):
        X, y = _blobs(n_per_class=30)
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        importances = tree.feature_importances_
        assert (importances >= 0).all()
        assert importances.sum() == pytest.approx(1.0)

    def test_pure_stump_importances_zero(self):
        tree = DecisionTreeClassifier().fit(np.zeros((5, 3)), ["a"] * 5)
        assert tree.feature_importances_.sum() == 0.0

    def test_restored_forest_importances_empty(self, tmp_path):
        from repro.pipeline import ClassifierBank, load_bank, save_bank
        from repro.trafficgen import generate_lab_dataset

        lab = generate_lab_dataset(seed=13, scale=0.03)
        bank = ClassifierBank.train(
            lab, model_factory=lambda: RandomForestClassifier(
                n_estimators=3, max_depth=8, random_state=1))
        save_bank(bank, tmp_path / "b")
        restored = load_bank(tmp_path / "b")
        scenario = next(iter(restored.scenarios.values()))
        # Importances are train-time state; restored models expose an
        # empty array rather than lying.
        assert scenario.platform_model.feature_importances_.size == 0
