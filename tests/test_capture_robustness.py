"""Real-capture shapes the tap must survive.

A campus capture is not a lab capture: ClientHellos arrive split across
TCP segments, segments arrive out of order, the capture can start
mid-flow (server packet first), and trunk-port frames carry 802.1Q
tags. Each shape used to be silently dropped or miscounted; these tests
pin the fixed behavior on both ingest paths.
"""

from dataclasses import replace

import pytest

from repro.errors import ParseError
from repro.features.extract import parse_flow_handshake
from repro.fingerprints import Provider, Transport, UserPlatform, get_profile
from repro.ml import RandomForestClassifier
from repro.net import EthernetHeader, Packet, PcapReader, PcapWriter
from repro.pipeline import ClassifierBank, RealtimePipeline
from repro.trafficgen import FlowBuildRequest, FlowFactory, generate_lab_dataset
from repro.util import SeededRNG


@pytest.fixture(scope="module")
def bank():
    lab = generate_lab_dataset(seed=11, scale=0.05)
    return ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=6, max_depth=14, random_state=1),
    )


@pytest.fixture()
def tcp_flow():
    factory = FlowFactory(SeededRNG(99))
    profile = get_profile(UserPlatform.from_label("windows_chrome"),
                          Provider.YOUTUBE)
    return factory.build(FlowBuildRequest(
        platform_label="windows_chrome", provider=Provider.YOUTUBE,
        transport=Transport.TCP, profile=profile,
        sni="rr1---sn-abc.googlevideo.com"))


def _split_hello(flow, pieces: int):
    """Split the flow's ClientHello segment into ``pieces`` seq-adjacent
    TCP segments."""
    packets = list(flow.packets)
    idx = next(i for i, p in enumerate(packets)
               if p.payload and p.payload[0] == 0x16)
    hello_pkt = packets[idx]
    payload = hello_pkt.payload
    size = max(1, len(payload) // pieces)
    parts = []
    offset = 0
    while offset < len(payload):
        end = len(payload) if len(parts) == pieces - 1 else offset + size
        chunk = payload[offset:end]
        seg = replace(
            hello_pkt,
            tcp=replace(hello_pkt.tcp, seq=hello_pkt.tcp.seq + offset),
            payload=chunk,
            timestamp=hello_pkt.timestamp + offset * 1e-6)
        parts.append(seg)
        offset += len(chunk)
    return packets[:idx] + parts + packets[idx + 1:]


class TestSplitClientHello:
    @pytest.mark.parametrize("pieces", [2, 3])
    def test_split_hello_parses(self, tcp_flow, pieces):
        packets = _split_hello(tcp_flow, pieces)
        assert len(packets) > len(tcp_flow.packets)
        record = parse_flow_handshake(packets)
        reference = parse_flow_handshake(tcp_flow.packets)
        assert record.sni == "rr1---sn-abc.googlevideo.com"
        assert record.client_hello == reference.client_hello

    def test_split_hello_out_of_order_parses(self, tcp_flow):
        packets = _split_hello(tcp_flow, 3)
        idx = [i for i, p in enumerate(packets)
               if p.payload and p.ip.src == "10.20.0.2"]
        reordered = list(packets)
        reordered[idx[0]], reordered[idx[-1]] = \
            reordered[idx[-1]], reordered[idx[0]]
        record = parse_flow_handshake(reordered)
        assert record.sni == "rr1---sn-abc.googlevideo.com"

    def test_retransmitted_duplicate_segment_parses(self, tcp_flow):
        packets = _split_hello(tcp_flow, 2)
        dup = next(p for p in packets
                   if p.payload and p.payload[0] == 0x16)
        record = parse_flow_handshake(packets + [dup])
        assert record.sni == "rr1---sn-abc.googlevideo.com"

    def test_gap_before_hello_still_fails(self, tcp_flow):
        """A hole in the stream (lost first half) must not parse."""
        packets = _split_hello(tcp_flow, 2)
        idx = next(i for i, p in enumerate(packets)
                   if p.payload and p.payload[0] == 0x16)
        del packets[idx]
        with pytest.raises(ParseError):
            parse_flow_handshake(packets)

    def test_split_hello_classifies_in_pipeline(self, bank, tcp_flow):
        pipeline = RealtimePipeline(bank)
        for packet in _split_hello(tcp_flow, 2):
            pipeline.process_packet(packet)
        pipeline.flush()
        assert pipeline.counters.video_flows == 1
        assert pipeline.counters.parse_failures == 0
        assert pipeline.counters.non_video_flows == 0


class TestReorder:
    def test_server_first_arrival_classifies(self, bank, tcp_flow):
        """Capture starts with the SYN-ACK: client direction must still
        resolve from the port, and the flow must classify."""
        packets = list(tcp_flow.packets)
        packets[0], packets[1] = packets[1], packets[0]
        pipeline = RealtimePipeline(bank)
        for packet in packets:
            pipeline.process_packet(packet)
        pipeline.flush()
        assert pipeline.counters.video_flows == 1
        record = list(pipeline.store)[0]
        # bytes_down/up split by true client IP, not arrival order
        assert record.bytes_down > record.bytes_up

    def test_syn_arriving_after_client_hello_classifies(self, bank,
                                                        tcp_flow):
        """The SYN carries the ISN the reassembler anchors on: when it
        arrives *after* the ClientHello data (reorder), its arrival
        must trigger the reparse — the flow may never see another
        payload packet before eviction."""
        packets = list(tcp_flow.packets)
        hello_idx = next(i for i, p in enumerate(packets)
                         if p.payload and p.payload[0] == 0x16)
        reordered = ([packets[hello_idx]] + packets[:hello_idx]
                     + packets[hello_idx + 1:])
        assert not reordered[1].payload  # SYN follows the hello
        pipeline = RealtimePipeline(bank)
        for packet in reordered[:2]:  # hello, then SYN — nothing else
            pipeline.process_packet(packet)
        pipeline.flush()
        assert pipeline.counters.video_flows == 1
        assert pipeline.counters.incomplete == 0

    def test_reordered_first_packet_keeps_min_first_seen(self, bank,
                                                         tcp_flow):
        packets = sorted(tcp_flow.packets,
                         key=lambda p: p.timestamp, reverse=True)
        pipeline = RealtimePipeline(bank)
        for packet in packets:
            pipeline.process_packet(packet)
        pipeline.flush()
        times = [p.timestamp for p in tcp_flow.packets]
        record = list(pipeline.store)[0]
        assert record.start_time == pytest.approx(min(times))
        assert record.duration == pytest.approx(max(times) - min(times))

    def test_raw_path_keeps_min_first_seen(self, bank, tcp_flow):
        frames = [(p.to_bytes(), p.timestamp)
                  for p in sorted(tcp_flow.packets,
                                  key=lambda p: p.timestamp,
                                  reverse=True)]
        pipeline = RealtimePipeline(bank)
        pipeline.process_frames(frames)
        pipeline.flush()
        times = [p.timestamp for p in tcp_flow.packets]
        record = list(pipeline.store)[0]
        assert record.start_time == pytest.approx(min(times))
        assert record.duration == pytest.approx(max(times) - min(times))


class TestVlan:
    def _tagged(self, flow, vlan_id=207):
        return [replace(p, eth=EthernetHeader(vlan_id=vlan_id))
                for p in flow.packets]

    def test_vlan_pcap_roundtrip(self, tmp_path, tcp_flow):
        path = tmp_path / "tagged.pcap"
        tagged = self._tagged(tcp_flow)
        with PcapWriter(path) as writer:
            for packet in tagged:
                writer.write_packet(packet)
        with PcapReader(path) as reader:
            eager = list(reader.packets())
        assert [p.vlan_id for p in eager] == [207] * len(tagged)
        assert [p.flow_key for p in eager] == \
            [p.flow_key for p in tcp_flow.packets]
        with PcapReader(path) as reader:
            raws = list(reader.raw_packets())
        assert [r.vlan_id for r in raws] == [207] * len(tagged)
        assert [r.promote() for r in raws] == eager

    def test_vlan_t1_matches_wire_roundtrip(self, tcp_flow):
        """t1 (init_packet_size) is the IP packet size: an in-memory
        tagged flow (total_length unset, wire_length fallback) must
        agree with the same flow reparsed from bytes."""
        tagged = self._tagged(tcp_flow)
        in_memory = parse_flow_handshake(tagged)
        rewired = parse_flow_handshake(
            [Packet.from_bytes(p.to_bytes(), p.timestamp)
             for p in tagged])
        assert in_memory.init_packet_size == rewired.init_packet_size

    def test_vlan_flow_classifies_both_paths(self, bank, tcp_flow):
        tagged = self._tagged(tcp_flow)
        eager = RealtimePipeline(bank)
        for packet in tagged:
            eager.process_packet(packet)
        eager.flush()
        raw = RealtimePipeline(bank)
        raw.process_frames((p.to_bytes(), p.timestamp) for p in tagged)
        raw.flush()
        assert eager.counters.video_flows == 1
        assert eager.counters.parse_failures == 0
        assert eager.counters == raw.counters
        assert list(eager.store) == list(raw.store)
