"""Tests for reporting helpers, table rendering and the transcribed
paper reference values."""

import numpy as np
import pytest

from repro.pipeline import SCENARIOS
from repro.reporting import (
    confusion_table,
    hourly_series_table,
    paper_values,
    paper_vs_measured_table,
)
from repro.util import format_histogram, format_table


class TestFormatTable:
    def test_basic_render(self):
        out = format_table(("a", "b"), [(1, 2), (3, 4)], title="T")
        assert "T" in out
        assert "| a" in out and "| 1" in out
        assert out.count("\n") >= 5

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1, 2, 3)])

    def test_alignment(self):
        out = format_table(("n",), [(5,)], aligns=("right",))
        assert "| n |" in out

    def test_histogram(self):
        out = format_histogram(["x", "yy"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].startswith("x ")
        assert "#" * 10 in lines[1]

    def test_histogram_zero_values(self):
        out = format_histogram(["x"], [0.0])
        assert "0" in out

    def test_histogram_length_mismatch(self):
        with pytest.raises(ValueError):
            format_histogram(["x"], [1.0, 2.0])


class TestRenderHelpers:
    def test_paper_vs_measured(self):
        out = paper_vs_measured_table("T", [("acc", 0.964, 0.951)])
        assert "0.964" in out and "0.951" in out

    def test_confusion_table_dots_for_zeros(self):
        matrix = np.array([[10, 0], [1, 9]])
        out = confusion_table(matrix, ["a", "b"], title="C")
        assert "1.00" in out
        assert "." in out

    def test_hourly_series_table(self):
        series = {"PC": list(range(24)), "Mobile": [0.5] * 24}
        out = hourly_series_table(series, title="H")
        assert out.count("\n") >= 26
        assert "23" in out


class TestPaperValues:
    def test_table3_keys_are_valid_scenarios(self):
        scenario_set = set(SCENARIOS)
        for (provider, transport, objective) in \
                paper_values.TABLE3_OPEN_SET:
            assert (provider, transport) in scenario_set
            assert objective in ("user_platform", "device_type",
                                 "software_agent")

    def test_table3_and_table4_cover_same_cells(self):
        assert set(paper_values.TABLE3_OPEN_SET) == \
            set(paper_values.TABLE4_CONFIDENCE)

    def test_table4_correct_exceeds_incorrect(self):
        for correct, incorrect in \
                paper_values.TABLE4_CONFIDENCE.values():
            assert correct > incorrect

    def test_table6_rows_have_five_scenarios(self):
        assert len(paper_values.TABLE6_SCENARIOS) == 5
        for row in paper_values.TABLE6_BASELINES.values():
            assert len(row) == 5

    def test_ours_wins_every_scenario_in_paper(self):
        ours = paper_values.TABLE6_BASELINES["ours"]
        for name, row in paper_values.TABLE6_BASELINES.items():
            if name == "ours":
                continue
            for our_value, their_value in zip(ours, row):
                assert our_value > their_value

    def test_model_comparison_rf_first(self):
        comparison = paper_values.MODEL_COMPARISON_YT_QUIC
        assert comparison["random_forest"] > comparison["mlp"]
        assert comparison["random_forest"] > comparison["knn"]

    def test_best_rf_config(self):
        assert paper_values.BEST_RF_CONFIG["n_attributes"] == 34
        assert paper_values.BEST_RF_CONFIG["max_depth"] == 20

    def test_peak_windows_are_evening(self):
        for provider, (lo, hi) in paper_values.PEAK_WINDOWS.items():
            assert 16 <= lo < hi <= 24
