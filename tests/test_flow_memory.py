"""Bounded-memory regression suite for the flow table.

Two leaks used to make long replays grow without bound: dead flows
(the non-video majority of a campus tap) kept their promoted handshake
packets until eviction, and nothing ever drove eviction during a pcap
replay. This suite pins the fixes:

(a) no ``_FlowState`` retains handshake packets once it stops
    collecting — on the eager path and the raw path;
(b) ``live_flows`` stays below a fixed bound when ingest drives
    idle eviction from capture timestamps, while counters/telemetry
    stay untouched for captures shorter than the timeout;
(c) a flow evicted and then reappearing is counted as a new flow,
    identically across eager, raw, sharded, and parallel runtimes.
"""

from dataclasses import replace

import pytest

from repro.fingerprints import Provider, Transport, UserPlatform, get_profile
from repro.ml import RandomForestClassifier
from repro.net import Packet, PcapWriter, TCPHeader, make_tcp_packet
from repro.pipeline import (
    ClassifierBank,
    ParallelShardedPipeline,
    RealtimePipeline,
    ShardedPipeline,
    ingest_pcap,
    save_bank,
)
from repro.trafficgen import (
    FlowBuildRequest,
    FlowFactory,
    generate_lab_dataset,
)
from repro.util import SeededRNG


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(seed=59, scale=0.04)


@pytest.fixture(scope="module")
def bank(lab):
    return ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=4, max_depth=10, random_state=0))


@pytest.fixture(scope="module")
def bank_dir(bank, tmp_path_factory):
    path = tmp_path_factory.mktemp("bank") / "bank"
    save_bank(bank, path)
    return path


def _non_video_frames(n_flows: int, start: float, spacing: float,
                      seed: int):
    """The leak regime: full TLS handshakes toward non-video hosts
    (SNI-filtered) plus 443 flows that never parse (8-packet
    parse-failure bar) — every one of them a dead flow that must not
    pin its handshake buffer."""
    factory = FlowFactory(SeededRNG(seed))
    profile = get_profile(UserPlatform.from_label("windows_chrome"),
                          Provider.YOUTUBE)
    packets = []
    for i in range(n_flows):
        t0 = start + i * spacing
        if i % 2:
            flow = factory.build(FlowBuildRequest(
                platform_label="windows_chrome",
                provider=Provider.YOUTUBE, transport=Transport.TCP,
                profile=profile, sni=f"cdn{i}.example.org",
                client_ip=f"10.{i % 200}.8.{1 + i // 200}",
                start_time=t0))
            packets.extend(flow.packets)
        else:
            rng = SeededRNG(seed + i)
            for j in range(10):  # payload but never a ClientHello
                tcp = TCPHeader(src_port=20000 + i, dst_port=443,
                                seq=j * 400, flag_ack=True)
                packets.append(make_tcp_packet(
                    f"172.16.{i % 250}.{1 + i // 250}", "203.0.113.9",
                    tcp, payload=rng.token_bytes(300),
                    timestamp=t0 + j * 0.01))
    packets.sort(key=lambda p: p.timestamp)
    return [(p.to_bytes(), p.timestamp) for p in packets]


def _retained_handshake_packets(pipeline: RealtimePipeline):
    done = [s for s in pipeline._flows.values()
            if s.done_collecting or s.not_video]
    return done, sum(len(s.handshake_packets) for s in done)


class TestHandshakeBufferRelease:
    @pytest.mark.parametrize("path", ("eager", "raw"))
    def test_dead_flows_release_buffers(self, bank, path):
        frames = _non_video_frames(120, start=100.0, spacing=0.05,
                                   seed=11)
        pipeline = RealtimePipeline(bank)
        if path == "raw":
            pipeline.process_frames(frames)
        else:
            for data, timestamp in frames:
                pipeline.process_packet(Packet.from_bytes(data,
                                                          timestamp))
        # No flush: these are exactly the states that used to pin
        # their packets until eviction.
        done, retained = _retained_handshake_packets(pipeline)
        assert len(done) >= 100  # the dead-flow regime is populated
        assert retained == 0, (
            f"{retained} handshake packets pinned by "
            f"{len(done)} dead flows")
        assert pipeline.counters.non_video_flows > 0
        assert pipeline.counters.parse_failures > 0

    def test_video_flows_release_buffers_too(self, bank, lab):
        pipeline = RealtimePipeline(bank)
        pipeline.process_frames(
            [(p.to_bytes(), p.timestamp)
             for flow in list(lab)[:20] for p in flow.packets])
        done, retained = _retained_handshake_packets(pipeline)
        assert pipeline.counters.video_flows > 0
        assert retained == 0


class TestBoundedFlowTable:
    def test_live_flows_bounded_with_idle_eviction(self, bank,
                                                   tmp_path):
        # 200 dead flows spaced 1 s apart: unbounded replay holds all
        # of them; with a 20 s idle timeout the table holds only the
        # flows of the trailing window.
        frames = _non_video_frames(200, start=0.0, spacing=1.0, seed=3)
        path = tmp_path / "long.pcap"
        with PcapWriter(path) as writer:
            for data, timestamp in frames:
                writer.write_bytes(data, timestamp)

        unbounded = RealtimePipeline(bank)
        ingest_pcap(unbounded, path)
        assert unbounded.live_flows == 200

        bounded = RealtimePipeline(bank)
        ingest_pcap(bounded, path, idle_timeout=20.0)
        assert bounded.counters.flows == 200  # every flow still seen
        assert bounded.live_flows <= 40, (
            f"{bounded.live_flows} live flows — eviction did not bound "
            f"the table")

    def test_skipped_frames_advance_the_eviction_clock(self, bank, lab,
                                                       tmp_path):
        """An unparseable-heavy stretch (IPv6/ARP bursts) still passes
        capture time: flows idle across it must be evicted, not pinned
        until the next parseable frame."""
        flow = next(iter(lab))
        path = tmp_path / "gappy.pcap"
        ipv6 = b"\x02" * 12 + b"\x86\xdd" + b"\x60" + b"\x00" * 47
        with PcapWriter(path) as writer:
            for p in flow.packets:
                writer.write_bytes(p.to_bytes(), p.timestamp + 1.0)
            for i in range(100):  # skipped frames spanning ~1000 s
                writer.write_bytes(ipv6, 20.0 + i * 10.0)
        pipeline = RealtimePipeline(bank)
        result = ingest_pcap(pipeline, path, idle_timeout=120.0)
        assert result.skipped == 100
        assert pipeline.live_flows == 0  # evicted mid-stretch
        assert len(pipeline.store) == 1  # and emitted, not dropped

    def test_short_capture_untouched_by_timeout(self, bank, lab,
                                                tmp_path):
        # A capture shorter than the timeout must be byte-for-byte
        # unaffected: same counters, same records, same order.
        packets = [p for flow in list(lab)[:15] for p in flow.packets]
        packets.sort(key=lambda p: p.timestamp)
        path = tmp_path / "short.pcap"
        with PcapWriter(path) as writer:
            for p in packets:
                writer.write_bytes(p.to_bytes(), p.timestamp)
        plain = RealtimePipeline(bank)
        ingest_pcap(plain, path)
        plain.flush()
        timed = RealtimePipeline(bank)
        ingest_pcap(timed, path, idle_timeout=3600.0)
        timed.flush()
        assert timed.counters == plain.counters
        assert list(timed.store) == list(plain.store)

    def test_ingest_validates_eviction_knobs(self, bank, tmp_path):
        pipeline = RealtimePipeline(bank)
        with pytest.raises(ValueError):
            ingest_pcap(pipeline, tmp_path / "x.pcap",
                        idle_timeout=-1.0)
        with pytest.raises(ValueError):
            ingest_pcap(pipeline, tmp_path / "x.pcap",
                        evict_interval=5.0)  # needs idle_timeout
        with pytest.raises(ValueError):
            ingest_pcap(pipeline, tmp_path / "x.pcap",
                        idle_timeout=10.0, evict_interval=0.0)


class TestEvictedFlowReappears:
    @pytest.fixture(scope="class")
    def reappear_pcap(self, lab, tmp_path_factory):
        """One video flow seen twice, 1000 s apart, with clock-driving
        background in between so eviction ticks actually fire."""
        flow = next(iter(lab))
        first = [replace(p, timestamp=p.timestamp + 1.0)
                 for p in flow.packets]
        again = [replace(p, timestamp=p.timestamp + 1001.0)
                 for p in flow.packets]
        rng = SeededRNG(21)
        filler = []
        for i in range(100):  # non-443: advances the clock, no state
            tcp = TCPHeader(src_port=30000 + i, dst_port=8080,
                            seq=i, flag_ack=True)
            filler.append(make_tcp_packet(
                "192.0.2.1", "198.51.100.2", tcp,
                payload=rng.token_bytes(64),
                timestamp=20.0 + i * 10.0))
        packets = sorted(first + filler + again,
                         key=lambda p: p.timestamp)
        path = tmp_path_factory.mktemp("reappear") / "reappear.pcap"
        with PcapWriter(path) as writer:
            for p in packets:
                writer.write_bytes(p.to_bytes(), p.timestamp)
        return path, flow.key.canonical()

    def test_counted_as_new_flow_on_every_runtime(self, bank, bank_dir,
                                                  reappear_pcap):
        path, key = reappear_pcap

        def result_of(pipeline, mode):
            ingest_pcap(pipeline, path, mode=mode, idle_timeout=120.0)
            pipeline.flush()
            records = sorted(
                (str(r.key), r.start_time, r.prediction)
                for r in pipeline.store)
            return pipeline.counters, records

        eager = result_of(RealtimePipeline(bank), "eager")
        raw = result_of(RealtimePipeline(bank), "raw")
        sharded = result_of(ShardedPipeline(bank, num_shards=3), "raw")
        with ParallelShardedPipeline(bank_dir, num_workers=3) as par:
            parallel = result_of(par, "raw")
        assert eager == raw == sharded == parallel
        counters, records = eager
        assert counters.flows == 2  # evicted + reappeared = two flows
        assert counters.video_flows == 2
        matching = [r for r in records
                    if r[0] == str(key) or r[0] == str(key.reversed())]
        assert len(matching) == 2

    def test_without_eviction_it_is_one_flow(self, bank, reappear_pcap):
        path, _ = reappear_pcap
        pipeline = RealtimePipeline(bank)
        ingest_pcap(pipeline, path)
        pipeline.flush()
        assert pipeline.counters.flows == 1
        assert pipeline.counters.video_flows == 1
