"""Property-based round-trip suite for every persistence surface.

Three artifact families — trained banks (``pipeline/persist.py``),
rollup cubes (``telemetry/snapshot.py``), and mid-replay checkpoints
(``pipeline/checkpoint.py``) — share one contract:

* **save → load → save is byte-equal** (JSON files byte-for-byte, npz
  arrays exactly; npz container bytes are excluded because the zip
  layer stamps timestamps);
* **loading a corrupted, truncated, or version-bumped artifact raises
  ConfigError** — never an arbitrary exception, never garbage state.

Randomization is plain seeded ``random`` (no new dependencies): the
cube contents, the checkpoint cut points, and the corruption positions
all come from per-test ``random.Random`` streams, so failures replay
exactly.
"""

import json
import random
import shutil
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fingerprints import Provider, Transport
from repro.ml import RandomForestClassifier
from repro.net.flow import FlowKey
from repro.pipeline import (
    ClassifierBank,
    PlatformPrediction,
    RealtimePipeline,
    TelemetryRecord,
    load_bank,
    restore_realtime,
    save_bank,
)
from repro.telemetry import (
    RollupConfig,
    RollupCube,
    load_rollup,
    save_rollup,
)
from repro.trafficgen import generate_lab_dataset


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(seed=47, scale=0.05)


@pytest.fixture(scope="module")
def bank(lab):
    return ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=4, max_depth=10, random_state=3))


@pytest.fixture(scope="module")
def campus_frames(lab):
    flows = list(lab)[::5][:50]
    frames = [(p.to_bytes(), p.timestamp)
              for flow in flows for p in flow.packets]
    frames.sort(key=lambda pair: pair[1])
    return frames


def _dir_digests(root: Path) -> dict:
    """Byte content of every JSON/bin file plus exact npz array
    contents, keyed by relative path (the byte-equality fingerprint of
    a persisted artifact)."""
    out = {}
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        rel = str(path.relative_to(root))
        if path.suffix == ".npz":
            with np.load(path) as arrays:
                out[rel] = {name: (arrays[name].dtype.str,
                                   arrays[name].tobytes())
                            for name in sorted(arrays.files)}
        else:
            out[rel] = zlib.crc32(path.read_bytes())
    return out


def _random_record(rng: random.Random, session: int) -> TelemetryRecord:
    provider = rng.choice(list(Provider))
    transport = rng.choice(list(Transport))
    status = rng.choice(("classified", "partial", "unknown"))
    confidence = rng.random()
    start = rng.uniform(0, 3 * 86400)
    return TelemetryRecord(
        key=FlowKey(6, f"10.0.{rng.randrange(256)}.{rng.randrange(256)}",
                    rng.randrange(1024, 65535), "93.184.216.34", 443),
        provider=provider, transport=transport,
        role=rng.choice(("content", "browse")),
        start_time=start, duration=rng.uniform(0, 7200),
        bytes_down=rng.randrange(10 ** 9),
        bytes_up=rng.randrange(10 ** 7),
        prediction=PlatformPrediction(
            status=status,
            platform="windows_chrome" if status == "classified"
            else None,
            device="windows" if status != "unknown" else None,
            agent=None, confidence=confidence,
            device_confidence=rng.random(),
            agent_confidence=rng.random()),
        session_id=session,
    )


class TestBankRoundtrip:
    def test_save_load_save_byte_equal(self, bank, tmp_path):
        save_bank(bank, tmp_path / "a")
        reloaded = load_bank(tmp_path / "a")
        save_bank(reloaded, tmp_path / "b")
        assert _dir_digests(tmp_path / "a") == \
            _dir_digests(tmp_path / "b")

    def test_reloaded_bank_classifies_identically(self, bank, lab,
                                                  tmp_path):
        save_bank(bank, tmp_path / "bank")
        reloaded = load_bank(tmp_path / "bank")
        pipeline_a = RealtimePipeline(bank)
        pipeline_b = RealtimePipeline(reloaded)
        for flow in list(lab)[::17][:25]:
            record_a = pipeline_a.process_flow(flow)
            record_b = pipeline_b.process_flow(flow)
            assert (record_a is None) == (record_b is None)
            if record_a is not None:
                assert record_a.prediction == record_b.prediction


class TestRollupRoundtrip:
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_randomized_cube_save_load_save(self, tmp_path, seed):
        rng = random.Random(0xA11CE + seed)
        cube = RollupCube(RollupConfig(
            bucket_seconds=rng.choice((900.0, 3600.0, 86400.0)),
            epsilon=rng.choice((0.005, 0.01, 0.05))))
        for i in range(rng.randrange(50, 400)):
            cube.ingest(_random_record(rng, session=i % 37))
        save_rollup(cube, tmp_path / "a")
        save_rollup(load_rollup(tmp_path / "a"), tmp_path / "b")
        assert (tmp_path / "a" / "rollup.json").read_bytes() == \
            (tmp_path / "b" / "rollup.json").read_bytes()
        assert _dir_digests(tmp_path / "a") == \
            _dir_digests(tmp_path / "b")


class TestCheckpointRoundtrip:
    @pytest.mark.parametrize("seed", (0, 1, 2, 3))
    def test_random_cut_save_load_save(self, bank, campus_frames,
                                       tmp_path, seed):
        """A checkpoint taken at a random point of a replay survives
        save → load → save byte-identically — state.json, packets.bin
        (the pickled handshake buffers), and the rollup snapshot."""
        rng = random.Random(0xBEEF + seed)
        cut = rng.randrange(1, len(campus_frames))
        pipeline = RealtimePipeline(bank, batch_size=rng.choice((1, 8)),
                                    retention="both")
        pipeline.process_frames(campus_frames[:cut])
        pipeline.save_checkpoint(tmp_path / "a")
        restored = restore_realtime(tmp_path / "a", bank)
        restored.save_checkpoint(tmp_path / "b")
        assert (tmp_path / "a" / "state.json").read_bytes() == \
            (tmp_path / "b" / "state.json").read_bytes()
        assert (tmp_path / "a" / "packets.bin").read_bytes() == \
            (tmp_path / "b" / "packets.bin").read_bytes()
        assert _dir_digests(tmp_path / "a") == \
            _dir_digests(tmp_path / "b")


def _corrupt(path: Path, rng: random.Random) -> None:
    data = bytearray(path.read_bytes())
    pos = rng.randrange(len(data))
    data[pos] ^= 1 + rng.randrange(255)
    path.write_bytes(bytes(data))


class TestCorruptionRejected:
    """Damaged artifacts must raise ConfigError — the deployment
    refuses to come back up on garbage rather than classifying with
    it."""

    @pytest.fixture()
    def bank_dir(self, bank, tmp_path):
        path = tmp_path / "bank"
        save_bank(bank, path)
        return path

    @pytest.fixture()
    def rollup_dir(self, tmp_path):
        rng = random.Random(7)
        cube = RollupCube(RollupConfig())
        for i in range(120):
            cube.ingest(_random_record(rng, session=i % 11))
        path = tmp_path / "rollup"
        save_rollup(cube, path)
        return path

    @pytest.fixture()
    def checkpoint_dir(self, bank, campus_frames, tmp_path):
        pipeline = RealtimePipeline(bank, batch_size=8,
                                    retention="both")
        pipeline.process_frames(campus_frames[:150])
        path = tmp_path / "ck"
        pipeline.save_checkpoint(path)
        return path

    def test_bank_version_bump_rejected(self, bank_dir):
        manifest = json.loads((bank_dir / "manifest.json").read_text())
        manifest["format_version"] = 99
        (bank_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ConfigError):
            load_bank(bank_dir)

    def test_bank_corrupt_npz_rejected(self, bank_dir):
        rng = random.Random(13)
        victim = sorted(bank_dir.glob("*.npz"))[0]
        _corrupt(victim, rng)
        with pytest.raises(ConfigError):
            load_bank(bank_dir)

    def test_bank_truncated_scenario_json_rejected(self, bank_dir):
        victim = sorted(p for p in bank_dir.glob("*.json")
                        if p.name != "manifest.json")[0]
        victim.write_bytes(victim.read_bytes()[:40])
        with pytest.raises(ConfigError):
            load_bank(bank_dir)

    def test_bank_missing_scenario_file_rejected(self, bank_dir):
        sorted(bank_dir.glob("*.npz"))[0].unlink()
        with pytest.raises(ConfigError):
            load_bank(bank_dir)

    def test_bank_garbage_manifest_rejected(self, bank_dir):
        (bank_dir / "manifest.json").write_bytes(b"\x00\xff{{{")
        with pytest.raises(ConfigError):
            load_bank(bank_dir)

    def test_rollup_version_bump_rejected(self, rollup_dir):
        manifest = json.loads((rollup_dir / "rollup.json").read_text())
        manifest["format_version"] = 99
        (rollup_dir / "rollup.json").write_text(json.dumps(manifest))
        with pytest.raises(ConfigError):
            load_rollup(rollup_dir)

    def test_rollup_truncated_manifest_rejected(self, rollup_dir):
        path = rollup_dir / "rollup.json"
        path.write_bytes(path.read_bytes()[:60])
        with pytest.raises(ConfigError):
            load_rollup(rollup_dir)

    def test_rollup_corrupt_npz_rejected(self, rollup_dir):
        # Stomp a span in the middle of the archive: whatever member
        # it lands in, decompression or the zip CRC must notice.
        path = rollup_dir / "rollup.npz"
        data = bytearray(path.read_bytes())
        mid = len(data) // 2
        data[mid:mid + 24] = b"\xff" * 24
        path.write_bytes(bytes(data))
        with pytest.raises(ConfigError):
            load_rollup(rollup_dir)

    def test_rollup_truncated_npz_rejected(self, rollup_dir):
        path = rollup_dir / "rollup.npz"
        path.write_bytes(path.read_bytes()[:-120])
        with pytest.raises(ConfigError):
            load_rollup(rollup_dir)

    def test_rollup_missing_npz_rejected(self, rollup_dir):
        (rollup_dir / "rollup.npz").unlink()
        with pytest.raises(ConfigError):
            load_rollup(rollup_dir)

    @pytest.mark.parametrize("seed", range(6))
    def test_checkpoint_any_state_flip_rejected(self, checkpoint_dir,
                                                seed):
        """The payload digest makes *any* byte flip in state.json a
        ConfigError — even flips that would still parse as valid JSON
        with plausible values."""
        rng = random.Random(0xD00D + seed)
        _corrupt(checkpoint_dir / "state.json", rng)
        with pytest.raises(ConfigError):
            restore_realtime(checkpoint_dir, None)

    @pytest.mark.parametrize("seed", range(3))
    def test_checkpoint_packet_flip_rejected(self, checkpoint_dir,
                                             seed):
        rng = random.Random(0xF00 + seed)
        _corrupt(checkpoint_dir / "packets.bin", rng)
        with pytest.raises(ConfigError):
            restore_realtime(checkpoint_dir, None)

    def test_checkpoint_truncation_rejected(self, checkpoint_dir):
        path = checkpoint_dir / "state.json"
        path.write_bytes(path.read_bytes()[:200])
        with pytest.raises(ConfigError):
            restore_realtime(checkpoint_dir, None)

    def test_checkpoint_version_bump_rejected(self, checkpoint_dir):
        path = checkpoint_dir / "state.json"
        document = json.loads(path.read_text())
        document["format_version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(ConfigError):
            restore_realtime(checkpoint_dir, None)

    def test_checkpoint_missing_rollup_rejected(self, checkpoint_dir):
        shutil.rmtree(checkpoint_dir / "rollup")
        with pytest.raises(ConfigError):
            restore_realtime(checkpoint_dir, None)

    def test_checkpoint_missing_dir_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            restore_realtime(tmp_path / "nope", None)
