"""Tests for replint, the project-invariant static analyzer.

Three layers:

* engine — suppression parsing (justification mandatory, unknown IDs
  rejected, string literals that merely mention the grammar ignored),
  import-alias resolution, registry invariants, reporters, CLI exit
  codes;
* rules — one bad/good fixture pair per rule ID, linted under virtual
  paths so path-scoped rules fire without touching the real tree;
* meta — the live ``src``/``tests``/``benchmarks`` tree is
  replint-clean, which is the same gate CI enforces.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools import all_rules, lint_paths, lint_source
from repro.devtools.core import META_RULE_ID, Rule, Violation, register
from repro.devtools.lint import main
from repro.devtools.reporters import (
    REPORT_FORMAT_VERSION,
    render_json,
    render_rule_list,
    render_text,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint(source: str, path: str, rule: str | None = None):
    rule_ids = None if rule is None else [rule]
    return lint_source(textwrap.dedent(source), path, rule_ids)


def fired(violations, rule_id: str) -> list:
    return [v for v in violations if v.rule_id == rule_id]


# -- registry ------------------------------------------------------------------


def test_catalog_is_rpl001_through_rpl011():
    assert sorted(all_rules()) == [f"RPL{i:03d}" for i in range(1, 12)]


def test_register_rejects_bad_and_reserved_ids():
    class NoId(Rule):
        id = "X1"

    with pytest.raises(ValueError, match="stable id"):
        register(NoId)

    class Meta(Rule):
        id = META_RULE_ID

    with pytest.raises(ValueError, match="reserved"):
        register(Meta)

    class Dup(Rule):
        id = "RPL001"

    with pytest.raises(ValueError, match="already registered"):
        register(Dup)


def test_every_rule_has_name_and_description():
    for rule_id, rule_cls in all_rules().items():
        assert rule_cls.name, rule_id
        assert len(rule_cls.description) > 40, rule_id


# -- suppressions --------------------------------------------------------------

ABSORBING_HANDLER = """\
    def f():
        try:
            g()
        except Exception:{comment}
            pass
"""


def test_justified_suppression_silences_the_finding():
    source = ABSORBING_HANDLER.format(
        comment="  # replint: disable=RPL004 -- demo absorber")
    assert lint(source, "repro/x.py", "RPL004") == []


def test_suppression_without_justification_is_rejected():
    source = ABSORBING_HANDLER.format(
        comment="  # replint: disable=RPL004")
    violations = lint(source, "repro/x.py")
    # The malformed directive is itself a finding AND the original
    # violation still stands — an unjustified waiver waives nothing.
    assert fired(violations, META_RULE_ID)
    assert "no justification" in fired(violations, META_RULE_ID)[0].message
    assert fired(violations, "RPL004")


def test_suppression_with_unknown_rule_id_is_rejected():
    source = ABSORBING_HANDLER.format(
        comment="  # replint: disable=RPL999 -- no such rule")
    violations = lint(source, "repro/x.py")
    assert any("unknown rule id" in v.message
               for v in fired(violations, META_RULE_ID))
    assert fired(violations, "RPL004")


def test_suppression_of_a_different_rule_does_not_silence():
    source = ABSORBING_HANDLER.format(
        comment="  # replint: disable=RPL001 -- wrong rule")
    assert fired(lint(source, "repro/x.py"), "RPL004")


def test_multi_id_suppression_covers_both_rules():
    source = """\
        import time

        def process_frame(self):
            return time.time()  # replint: disable=RPL001,RPL006 -- demo
    """
    violations = lint(source, "repro/pipeline/engine.py")
    assert fired(violations, "RPL001") == []
    assert fired(violations, "RPL006") == []


def test_directive_inside_a_string_is_not_a_directive():
    source = '''\
        MESSAGE = "use '# replint: disable=RPL004 -- why' to suppress"

        def f():
            """Docstring mentioning # replint: disable=RPL001."""
            return MESSAGE
    '''
    assert lint(source, "repro/x.py") == []


def test_suppression_must_sit_on_the_reported_line():
    source = """\
        # replint: disable=RPL004 -- wrong line, does not apply below

        def f():
            try:
                g()
            except Exception:
                pass
    """
    assert fired(lint(source, "repro/x.py"), "RPL004")


def test_syntax_error_reports_under_meta_rule():
    violations = lint("def f(:\n", "repro/x.py")
    assert [v.rule_id for v in violations] == [META_RULE_ID]
    assert "syntax error" in violations[0].message


# -- RPL001 hot-path purity ----------------------------------------------------


def test_rpl001_fires_on_wall_clock_and_ambient_rng():
    source = """\
        import random
        import time

        def tick():
            return time.time() + random.random()
    """
    violations = lint(source, "repro/pipeline/engine.py", "RPL001")
    messages = " ".join(v.message for v in violations)
    assert "time.time" in messages
    assert "random" in messages


def test_rpl001_aliased_import_is_still_caught():
    source = """\
        import time as clock

        def tick():
            return clock.time()
    """
    assert lint(source, "repro/net/rawpacket.py", "RPL001")


def test_rpl001_clean_on_perf_counter_and_seeded_rng():
    source = """\
        import time
        from random import Random

        def tick(timestamp: float) -> float:
            rng = Random(7)
            return timestamp + time.perf_counter() + rng.random()
    """
    # perf_counter is monotonic (not wall clock) and the bound-method
    # rng.random() resolves through a local, not the random module.
    assert lint(source, "repro/pipeline/engine.py", "RPL001") == []


def test_rpl001_out_of_scope_module_is_ignored():
    source = "import time\n\nWHEN = time.time()\n"
    assert lint(source, "repro/reporting/tables.py", "RPL001") == []


# -- RPL002 fork safety --------------------------------------------------------


def test_rpl002_fires_on_module_level_multiprocessing_state():
    source = """\
        import multiprocessing

        QUEUE = multiprocessing.Queue()
    """
    violations = lint(source, "repro/pipeline/helpers.py", "RPL002")
    assert "module-level" in violations[0].message


def test_rpl002_fires_on_threads_in_a_process_spawning_module():
    source = """\
        import multiprocessing
        import threading

        def run(target):
            worker = multiprocessing.Process(target=target)
            thread = threading.Thread(target=target)
            worker.start()
            thread.start()
            worker.join()
            thread.join()
    """
    violations = lint(source, "repro/pipeline/helpers.py", "RPL002")
    assert any("thread creation" in v.message for v in violations)


def test_rpl002_clean_on_function_scoped_process_without_threads():
    source = """\
        import multiprocessing

        def run(target):
            ctx = multiprocessing.get_context("spawn")
            worker = ctx.Process(target=target)
            worker.start()
            try:
                pass
            finally:
                worker.join()
    """
    assert lint(source, "repro/pipeline/helpers.py", "RPL002") == []


# -- RPL003 resource lifecycle -------------------------------------------------

SHM_LEAK = """\
    from multiprocessing.shared_memory import SharedMemory

    def grab(size):
        shm = SharedMemory(create=True, size=size)
        shm.buf[0] = 1
        return None
"""


def test_rpl003_fires_on_unguarded_shared_memory():
    violations = lint(SHM_LEAK, "repro/pipeline/x.py", "RPL003")
    assert "early exception leaks it" in violations[0].message


def test_rpl003_fires_on_unbound_process():
    source = """\
        import multiprocessing

        def fire(target):
            multiprocessing.Process(target=target).start()
    """
    violations = lint(source, "repro/pipeline/x.py", "RPL003")
    assert "without a binding" in violations[0].message


@pytest.mark.parametrize("body", [
    # finally cleanup
    """\
    shm = SharedMemory(create=True, size=size)
    try:
        shm.buf[0] = 1
    finally:
        shm.close()
    """,
    # except-handler cleanup (the FrameRing.__init__ shape)
    """\
    shm = SharedMemory(create=True, size=size)
    try:
        shm.buf[0] = 1
    except BaseException:
        shm.close()
        raise
    return shm
    """,
    # ownership escapes via return
    """\
    shm = SharedMemory(create=True, size=size)
    return shm
    """,
    # ownership escapes to the instance
    """\
    self.shm = SharedMemory(create=True, size=size)
    """,
    # context manager
    """\
    with SharedMemory(create=True, size=size) as shm:
        shm.buf[0] = 1
    """,
    # registered finalizer
    """\
    shm = SharedMemory(create=True, size=size)
    stack.callback(shm.close)
    """,
])
def test_rpl003_clean_on_guarded_lifecycles(body):
    source = ("from multiprocessing.shared_memory import SharedMemory\n\n"
              "def grab(self, stack, size):\n"
              + textwrap.indent(textwrap.dedent(body), "    "))
    assert lint_source(source, "repro/pipeline/x.py", ["RPL003"]) == []


# -- RPL004 exception contract -------------------------------------------------


def test_rpl004_fires_on_bare_except():
    source = """\
        def f():
            try:
                g()
            except:
                pass
    """
    violations = lint(source, "repro/x.py", "RPL004")
    assert "bare 'except:'" in violations[0].message


def test_rpl004_fires_on_absorbing_broad_handler():
    violations = lint(ABSORBING_HANDLER.format(comment=""),
                      "repro/x.py", "RPL004")
    assert "needs a justified suppression" in violations[0].message


def test_rpl004_broad_handler_that_raises_is_exempt():
    source = """\
        def f():
            try:
                g()
            except Exception as exc:
                raise ConfigError("translated") from exc
    """
    assert lint(source, "repro/x.py", "RPL004") == []


def test_rpl004_parser_code_must_raise_parse_or_crypto_error():
    source = """\
        def parse(data):
            if not data:
                raise RuntimeError("empty")
    """
    violations = lint(source, "repro/net/newproto.py", "RPL004")
    assert "parsers must raise only" in violations[0].message
    ok = """\
        from repro.errors import ParseError

        def parse(data):
            if not data:
                raise ParseError("empty")
    """
    assert lint(ok, "repro/net/newproto.py", "RPL004") == []


def test_rpl004_dunder_type_guards_are_exempt_in_parsers():
    source = """\
        class Header:
            def __eq__(self, other):
                if not isinstance(other, Header):
                    raise TypeError("incomparable")
                return True
    """
    assert lint(source, "repro/net/newproto.py", "RPL004") == []


def test_rpl004_non_parser_module_may_raise_anything():
    source = """\
        def check(x):
            raise RuntimeError("fine here")
    """
    assert lint(source, "repro/pipeline/x.py", "RPL004") == []


# -- RPL005 checkpoint discipline ----------------------------------------------


def test_rpl005_fires_on_unversioned_save_payload():
    source = """\
        import json

        def save_table(table, path):
            path.write_text(json.dumps({"cells": table}))
    """
    violations = lint(source, "repro/telemetry/x.py", "RPL005")
    assert "format-version" in violations[0].message


def test_rpl005_fires_when_module_lacks_the_version_constant():
    source = """\
        import json

        def save_table(table, path):
            path.write_text(json.dumps(
                {"format_version": 1, "cells": table}))
    """
    violations = lint(source, "repro/telemetry/x.py", "RPL005")
    assert any("no *_FORMAT_VERSION" in v.message for v in violations)


def test_rpl005_clean_on_versioned_save():
    source = """\
        import json

        _FORMAT_VERSION = 3

        def save_table(table, path):
            path.write_text(json.dumps(
                {"format_version": _FORMAT_VERSION, "cells": table}))
    """
    assert lint(source, "repro/telemetry/x.py", "RPL005") == []


def test_rpl005_non_serializing_save_is_ignored():
    source = """\
        def save_nothing(x):
            return x
    """
    assert lint(source, "repro/telemetry/x.py", "RPL005") == []


# -- RPL006 metrics at export --------------------------------------------------


def test_rpl006_fires_on_instrument_lookup_in_per_frame_function():
    source = """\
        class Engine:
            def process_frame(self, data: bytes) -> None:
                self.metrics.counter("repro_frames", "help").inc()
    """
    violations = lint(source, "repro/pipeline/x.py", "RPL006")
    assert "bind instruments once" in violations[0].message


def test_rpl006_fires_on_observe_and_timing_in_per_frame_function():
    source = """\
        import time

        class Engine:
            def process_raw(self, raw) -> None:
                start = time.perf_counter()
                self._hist.observe(time.perf_counter() - start)
    """
    violations = lint(source, "repro/pipeline/x.py", "RPL006")
    messages = " ".join(v.message for v in violations)
    assert "timing inside per-frame" in messages
    assert ".observe()" in messages


def test_rpl006_prebound_inc_and_batch_spans_are_clean():
    source = """\
        class Engine:
            def process_frame(self, data: bytes) -> None:
                if self._c_promotions is not None:
                    self._c_promotions.inc()

            def drain(self) -> int:
                with self.metrics.timed("repro_stage_seconds", "h"):
                    return 0
    """
    assert lint(source, "repro/pipeline/x.py", "RPL006") == []


# -- RPL007 no pickled banks ---------------------------------------------------


def test_rpl007_fires_on_pickle_import_outside_checkpoint():
    source = "import pickle\n"
    violations = lint(source, "repro/ml/x.py", "RPL007")
    assert "outside the checkpoint module" in violations[0].message


def test_rpl007_fires_on_pickling_bankish_state_anywhere():
    source = """\
        import pickle

        def stash(bank, path):
            path.write_bytes(pickle.dumps(bank))
    """
    violations = lint(source, "repro/pipeline/checkpoint.py", "RPL007")
    assert "save_bank/load_bank" in violations[0].message


def test_rpl007_checkpoint_module_may_pickle_flow_state():
    source = """\
        import pickle

        def save_buffers(packets, path):
            path.write_bytes(pickle.dumps(packets, protocol=4))
    """
    assert lint(source, "repro/pipeline/checkpoint.py", "RPL007") == []


# -- RPL008 golden traces wall-clock-free --------------------------------------


def test_rpl008_fires_on_wall_clock_and_unseeded_rng_in_golden_tests():
    source = """\
        import time

        import numpy as np

        def test_golden():
            rng = np.random.default_rng()
            assert time.time() > 0
    """
    violations = lint(source, "tests/test_golden_trace.py", "RPL008")
    messages = " ".join(v.message for v in violations)
    assert "wall-clock" in messages
    assert "unseeded default_rng" in messages


def test_rpl008_clean_on_seeded_deterministic_golden_test():
    source = """\
        import numpy as np

        def test_golden():
            rng = np.random.default_rng(7)
            assert rng.integers(10) >= 0
    """
    assert lint(source, "tests/test_golden_trace.py", "RPL008") == []


def test_rpl008_ordinary_tests_are_out_of_scope():
    source = "import time\n\n\ndef test_x():\n    assert time.time()\n"
    assert lint(source, "tests/test_other.py", "RPL008") == []


# -- RPL009 no print in library ------------------------------------------------


def test_rpl009_fires_on_library_print():
    source = """\
        def ingest(x):
            print("debug", x)
    """
    violations = lint(source, "repro/telemetry/x.py", "RPL009")
    assert "print() in a library module" in violations[0].message


def test_rpl009_cli_reporting_and_devtools_may_print():
    source = "def show(x):\n    print(x)\n"
    for path in ("repro/cli.py", "repro/reporting/tables.py",
                 "repro/devtools/lint.py", "tests/test_x.py"):
        assert lint(source, path, "RPL009") == [], path


# -- RPL010 public API annotations ---------------------------------------------


def test_rpl010_fires_on_unannotated_public_surface():
    source = """\
        def transform(data):
            return data

        class Engine:
            def feed(self, frames, timestamp: float) -> None:
                pass
    """
    violations = lint(source, "repro/pipeline/x.py", "RPL010")
    messages = " ".join(v.message for v in violations)
    assert "transform() has unannotated parameter(s) data" in messages
    assert "transform() has no return annotation" in messages
    assert "feed() has unannotated parameter(s) frames" in messages


def test_rpl010_private_nested_and_init_return_are_exempt():
    source = """\
        def _helper(x):
            return x

        class _Internal:
            def run(self, x):
                return x

        class Engine:
            def __init__(self, size: int):
                self.size = size

            def public(self, n: int) -> int:
                def inner(y):
                    return y
                return inner(n)
    """
    assert lint(source, "repro/pipeline/x.py", "RPL010") == []


def test_rpl010_only_guards_typed_packages():
    source = "def transform(data):\n    return data\n"
    assert lint(source, "repro/trafficgen/x.py", "RPL010") == []


# -- RPL011 pack data discipline -----------------------------------------------


def test_rpl011_fires_on_profile_assembly_outside_the_loader():
    source = """\
        from repro.fingerprints.specs import PlatformProfile

        EXTRA = PlatformProfile(label="linux_chrome")
    """
    violations = lint(source, "repro/fingerprints/extras.py", "RPL011")
    assert "outside the pack loader" in violations[0].message


def test_rpl011_loader_may_assemble_profiles():
    source = """\
        from repro.fingerprints.specs import PlatformProfile

        def _materialize(entry):
            return PlatformProfile(**entry)
    """
    path = "repro/fingerprints/packs/loader.py"
    assert lint(source, path, "RPL011") == []


def test_rpl011_fires_on_unversioned_pack_writer():
    source = """\
        import json

        def write_pack(document, path):
            path.write_text(json.dumps(document))
    """
    violations = lint(source, "repro/fingerprints/packs/x.py", "RPL011")
    assert "without referencing the pack format version" in \
        violations[0].message


def test_rpl011_clean_on_version_stamped_pack_writer():
    source = """\
        import json

        PACK_FORMAT_VERSION = 1

        def write_pack(document, path):
            document["format_version"] = PACK_FORMAT_VERSION
            path.write_text(json.dumps(document))
    """
    assert lint(source, "repro/fingerprints/packs/x.py", "RPL011") == []


def test_rpl011_writer_check_only_guards_the_packs_package():
    source = """\
        import json

        def write_report(document, path):
            path.write_text(json.dumps(document))
    """
    assert lint(source, "repro/fingerprints/report.py", "RPL011") == []


def test_rpl011_out_of_scope_packages_are_ignored():
    source = "P = PlatformProfile(label='x')\n"
    assert lint(source, "repro/pipeline/x.py", "RPL011") == []


# -- reporters -----------------------------------------------------------------


def test_render_text_includes_location_and_summary():
    violations = [Violation("RPL001", "a.py", 3, 4, "boom")]
    text = render_text(violations, 5)
    assert "a.py:3:4: RPL001 boom" in text
    assert "replint: 1 violation in 5 file(s) checked" in text


def test_render_json_is_versioned_and_counts_by_rule():
    violations = [Violation("RPL001", "a.py", 3, 4, "boom"),
                  Violation("RPL001", "b.py", 1, 0, "boom again"),
                  Violation("RPL009", "b.py", 9, 0, "print")]
    document = json.loads(render_json(violations, 7))
    assert document["format_version"] == REPORT_FORMAT_VERSION
    assert document["checked_files"] == 7
    assert document["total"] == 3
    assert document["by_rule"] == {"RPL001": 2, "RPL009": 1}
    assert document["violations"][0]["path"] == "a.py"


def test_render_rule_list_names_every_rule():
    listing = render_rule_list()
    for rule_id in all_rules():
        assert rule_id in listing


# -- CLI -----------------------------------------------------------------------


def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("X = 1\n")
    assert main([str(tmp_path)]) == 0
    assert "0 violations in 1 file(s)" in capsys.readouterr().out


def test_cli_exit_one_on_violation(tmp_path, capsys):
    bad = tmp_path / "repro" / "telemetry"
    bad.mkdir(parents=True)
    (bad / "x.py").write_text("def f(x):\n    print(x)\n")
    assert main([str(tmp_path)]) == 1
    assert "RPL009" in capsys.readouterr().out


def test_cli_select_restricts_rules(tmp_path, capsys):
    bad = tmp_path / "repro" / "telemetry"
    bad.mkdir(parents=True)
    (bad / "x.py").write_text("def f(x):\n    print(x)\n")
    assert main([str(tmp_path), "--select", "RPL001"]) == 0
    capsys.readouterr()


def test_cli_json_output_file(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("X = 1\n")
    out = tmp_path / "report.json"
    assert main([str(tmp_path), "--format", "json",
                 "--output", str(out)]) == 0
    document = json.loads(out.read_text())
    assert document["format_version"] == REPORT_FORMAT_VERSION
    # The human tally still lands on stderr for CI logs.
    assert "0 violations" in capsys.readouterr().err


def test_cli_usage_errors_exit_two(tmp_path, capsys):
    assert main([]) == 2
    assert main(["--select", "RPL999", str(tmp_path)]) == 2
    assert main([str(tmp_path / "missing")]) == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    assert "RPL001" in capsys.readouterr().out


# -- meta: the live tree is clean ----------------------------------------------


def test_live_tree_is_replint_clean():
    """The same gate CI runs: src, tests, and benchmarks lint clean.

    A failure here means a new violation landed without either a fix
    or a justified suppression — see docs/ARCHITECTURE.md."""
    violations, checked = lint_paths([REPO_ROOT / "src",
                                      REPO_ROOT / "tests",
                                      REPO_ROOT / "benchmarks"])
    assert checked > 100  # the sweep actually saw the tree
    assert violations == [], "\n".join(
        f"{v.path}:{v.line}: {v.rule_id} {v.message}" for v in violations)
