"""Tests for ClientHello build/parse and extension codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.tls import (
    ClientHello,
    Extension,
    client_hello_records,
    constants as c,
    extensions as ext_codec,
    parse_client_hello_records,
    wrap_handshake_records,
)


def _chrome_like_hello(sni="www.youtube.com") -> ClientHello:
    exts = (
        ext_codec.build_server_name(sni),
        ext_codec.Extension(c.EXT_EXTENDED_MASTER_SECRET),
        ext_codec.build_renegotiation_info(),
        ext_codec.build_supported_groups(
            [c.GROUP_X25519, c.GROUP_SECP256R1, c.GROUP_SECP384R1]),
        ext_codec.build_ec_point_formats([0]),
        ext_codec.build_session_ticket(),
        ext_codec.build_alpn(["h2", "http/1.1"]),
        ext_codec.build_status_request(),
        ext_codec.build_signature_algorithms([
            c.SIG_ECDSA_SECP256R1_SHA256, c.SIG_RSA_PSS_RSAE_SHA256,
            c.SIG_RSA_PKCS1_SHA256]),
        ext_codec.build_signed_certificate_timestamp(),
        ext_codec.build_key_share([(c.GROUP_X25519, bytes(32))]),
        ext_codec.build_psk_key_exchange_modes([c.PSK_MODE_PSK_DHE_KE]),
        ext_codec.build_supported_versions([c.TLS_1_3, c.TLS_1_2]),
        ext_codec.build_compress_certificate([c.CERT_COMPRESSION_BROTLI]),
        ext_codec.build_application_settings(["h2"]),
        ext_codec.build_padding(190),
    )
    return ClientHello(
        cipher_suites=(c.TLS_AES_128_GCM_SHA256, c.TLS_AES_256_GCM_SHA384,
                       c.TLS_CHACHA20_POLY1305_SHA256,
                       c.ECDHE_ECDSA_AES128_GCM, c.ECDHE_RSA_AES128_GCM),
        extensions=exts,
        session_id=bytes(range(32)),
        random=bytes(reversed(range(32))),
    )


class TestClientHelloRoundtrip:
    def test_handshake_roundtrip(self):
        hello = _chrome_like_hello()
        parsed = ClientHello.parse_handshake(hello.to_handshake_bytes())
        assert parsed == hello

    def test_record_roundtrip(self):
        hello = _chrome_like_hello()
        parsed = parse_client_hello_records(client_hello_records(hello))
        assert parsed == hello

    def test_multi_record_fragmentation(self):
        hello = _chrome_like_hello()
        records = wrap_handshake_records(hello.to_handshake_bytes(),
                                         max_fragment=64)
        assert parse_client_hello_records(records) == hello

    def test_handshake_length_matches_wire(self):
        hello = _chrome_like_hello()
        wire = hello.to_handshake_bytes()
        assert int.from_bytes(wire[1:4], "big") == hello.handshake_length

    def test_extensions_length_matches_wire(self):
        hello = _chrome_like_hello()
        body = hello.body_bytes()
        # extensions length field is the last 2-byte length before the
        # extension list; re-parse and compare.
        parsed = ClientHello.parse_handshake(hello.to_handshake_bytes())
        assert parsed.extensions_length == hello.extensions_length
        total_ext_bytes = sum(4 + len(e.data) for e in hello.extensions)
        assert hello.extensions_length == total_ext_bytes
        assert body.endswith(
            hello.extensions[-1].to_bytes()
        )


class TestExtensionAccessors:
    def test_sni(self):
        assert _chrome_like_hello("media.netflix.com").server_name == \
            "media.netflix.com"

    def test_alpn(self):
        assert _chrome_like_hello().alpn_protocols == ("h2", "http/1.1")

    def test_groups_and_sigalgs(self):
        hello = _chrome_like_hello()
        assert hello.supported_groups[0] == c.GROUP_X25519
        assert c.SIG_RSA_PSS_RSAE_SHA256 in hello.signature_algorithms

    def test_supported_versions(self):
        assert _chrome_like_hello().supported_versions == \
            (c.TLS_1_3, c.TLS_1_2)

    def test_key_share(self):
        entries = _chrome_like_hello().key_share_entries
        assert entries == ((c.GROUP_X25519, bytes(32)),)

    def test_missing_extension_accessors(self):
        hello = ClientHello(cipher_suites=(0x1301,))
        assert hello.server_name is None
        assert hello.alpn_protocols == ()
        assert hello.supported_groups == ()
        assert hello.key_share_entries == ()

    def test_with_server_name_replaces_in_place(self):
        hello = _chrome_like_hello("a.example.com")
        updated = hello.with_server_name("b.example.com")
        assert updated.server_name == "b.example.com"
        assert updated.extension_types == hello.extension_types

    def test_with_server_name_inserts_when_absent(self):
        hello = ClientHello(cipher_suites=(0x1301,))
        updated = hello.with_server_name("x.example.com")
        assert updated.server_name == "x.example.com"


class TestParseErrors:
    def test_not_client_hello(self):
        data = bytes([2]) + (4).to_bytes(3, "big") + bytes(4)
        with pytest.raises(ParseError):
            ClientHello.parse_handshake(data)

    def test_truncated_body(self):
        wire = _chrome_like_hello().to_handshake_bytes()
        with pytest.raises(ParseError):
            ClientHello.parse_handshake(wire[:-10])

    def test_record_wrong_content_type(self):
        records = bytearray(client_hello_records(_chrome_like_hello()))
        records[0] = 23  # application_data
        with pytest.raises(ParseError):
            parse_client_hello_records(bytes(records))

    def test_bad_random_length_rejected_on_build(self):
        hello = ClientHello(cipher_suites=(0x1301,), random=bytes(31))
        with pytest.raises(ParseError):
            hello.to_handshake_bytes()

    def test_trailing_garbage_rejected(self):
        hello = _chrome_like_hello()
        body = hello.body_bytes() + b"\x00"
        wire = bytes([1]) + len(body).to_bytes(3, "big") + body
        with pytest.raises(ParseError):
            ClientHello.parse_handshake(wire)


class TestCodecRoundtrips:
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=20))
    def test_supported_groups_roundtrip(self, groups):
        ext = ext_codec.build_supported_groups(groups)
        assert list(ext_codec.parse_supported_groups(ext)) == groups

    @given(st.lists(
        st.text(alphabet="abcdefgh123/.-", min_size=1, max_size=12),
        max_size=6,
    ))
    def test_alpn_roundtrip(self, protocols):
        ext = ext_codec.build_alpn(protocols)
        assert list(ext_codec.parse_alpn(ext)) == protocols

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=0xFFFF),
        st.binary(min_size=1, max_size=64),
    ), max_size=4))
    def test_key_share_roundtrip(self, entries):
        ext = ext_codec.build_key_share(entries)
        assert list(ext_codec.parse_key_share(ext)) == entries

    @given(st.integers(min_value=64, max_value=65535))
    def test_record_size_limit_roundtrip(self, limit):
        ext = ext_codec.build_record_size_limit(limit)
        assert ext_codec.parse_record_size_limit(ext) == limit

    def test_pre_shared_key_shape(self):
        ext = ext_codec.build_pre_shared_key(b"ticket-id" * 4, bytes(32))
        assert ext.type == c.EXT_PRE_SHARED_KEY
        assert len(ext.data) > 40


class TestGrease:
    def test_known_values(self):
        from repro.tls import GREASE_VALUES, is_grease
        assert 0x0A0A in GREASE_VALUES
        assert 0xFAFA in GREASE_VALUES
        assert len(GREASE_VALUES) == 16
        for v in GREASE_VALUES:
            assert is_grease(v)

    def test_non_grease(self):
        from repro.tls import is_grease
        for v in (0x1301, 0x0017, 0x001D, 0xC02B, 0x0A0B, 0x1A0A):
            assert not is_grease(v)

    def test_random_grease_deterministic(self):
        from repro.tls import random_grease
        from repro.util import SeededRNG
        assert random_grease(SeededRNG(7)) == random_grease(SeededRNG(7))

    def test_quic_grease_param_id_reserved_form(self):
        from repro.tls import grease_quic_transport_parameter_id
        from repro.util import SeededRNG
        rng = SeededRNG(3)
        for _ in range(20):
            value = grease_quic_transport_parameter_id(rng)
            assert value % 31 == 27
