"""Shared-memory ring transport: the properties that keep it safe.

The ring is the one piece of the multiprocess runtime with genuinely
concurrent state, so its invariants get their own wall: wraparound
never corrupts a payload, a full ring blocks the producer (and polls
liveness) instead of overwriting, a SIGKILLed worker respawns onto a
*fresh* ring with the PR 5 journal-replay contract intact, and no
``/dev/shm`` segment outlives the pipeline — on normal close, on
terminate, and across respawns.
"""

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import asdict
from multiprocessing.shared_memory import SharedMemory

import pytest

from repro.ml import RandomForestClassifier
from repro.net import PcapWriter, TCPHeader, make_tcp_packet
from repro.pipeline import (
    TRANSPORTS,
    ClassifierBank,
    ParallelShardedPipeline,
    ShardedPipeline,
    ingest_pcap,
    save_bank,
)
from repro.pipeline.shmring import FrameRing, RingReader
from repro.trafficgen import generate_lab_dataset
from repro.util import SeededRNG


@pytest.fixture(scope="module")
def ctx():
    return multiprocessing.get_context("spawn")


def _segment_exists(name: str) -> bool:
    try:
        shm = SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        return True
    finally:
        shm.close()


class TestFrameRingUnit:
    def test_rejects_tiny_ring_and_oversized_payload(self, ctx):
        with pytest.raises(ValueError):
            FrameRing(ctx, size=16)
        ring = FrameRing(ctx, size=4096)
        try:
            with pytest.raises(ValueError):
                ring.write(b"x" * 4097)
        finally:
            ring.close()

    def test_wraparound_never_splits_a_payload(self, ctx):
        """Payloads that would straddle the physical end skip the tail:
        every descriptor names one contiguous span and round-trips
        byte-identically through a reader."""
        ring = FrameRing(ctx, size=4096)
        reader = RingReader(ring.name, ring.consumed)
        rng = SeededRNG(3)
        try:
            for n in range(40):
                payload = rng.token_bytes(900 + (n * 137) % 900)
                offset, length, after = ring.write(payload)
                assert offset + length <= ring.size  # contiguous
                view = reader.view(offset, length)
                assert bytes(view) == payload
                del view
                reader.release(after)
            # the cursor accounting covered skipped tails too
            assert ring.written == ring.consumed.value
        finally:
            reader.close()
            ring.close()

    def test_full_ring_blocks_until_consumed(self, ctx):
        ring = FrameRing(ctx, size=4096)
        polls = []
        try:
            first = ring.write(b"a" * 3000)
            released = threading.Timer(
                0.15, lambda: ring.consumed.__setattr__(
                    "value", first[2]))
            released.start()
            start = time.monotonic()
            offset, length, _ = ring.write(b"b" * 3000,
                                           liveness=lambda:
                                           polls.append(1))
            waited = time.monotonic() - start
            assert waited >= 0.1       # actually blocked
            assert polls               # liveness polled while blocked
            assert offset == 0         # wrapped to the start
            assert bytes(ring.shm.buf[offset:offset + length]) == \
                b"b" * 3000
            released.join()
        finally:
            ring.close()

    def test_liveness_exception_escapes_the_wait(self, ctx):
        ring = FrameRing(ctx, size=4096)
        try:
            ring.write(b"a" * 3000)

            def dead():
                raise RuntimeError("worker died")

            with pytest.raises(RuntimeError, match="worker died"):
                ring.write(b"b" * 3000, liveness=dead)
        finally:
            ring.close()

    def test_close_is_idempotent_and_unlinks(self, ctx):
        ring = FrameRing(ctx, size=4096)
        name = ring.name
        assert _segment_exists(name)
        ring.close()
        assert not _segment_exists(name)
        ring.close()  # second close is a no-op


@pytest.fixture(scope="module")
def bank():
    return ClassifierBank.train(
        generate_lab_dataset(seed=7, scale=0.02),
        model_factory=lambda: RandomForestClassifier(
            n_estimators=2, max_depth=8, random_state=0))


@pytest.fixture(scope="module")
def bank_dir(bank, tmp_path_factory):
    path = tmp_path_factory.mktemp("shm-bank") / "bank"
    save_bank(bank, path)
    return path


@pytest.fixture(scope="module")
def capture(bank, tmp_path_factory):
    """A small capture plus its serial-oracle state."""
    lab = generate_lab_dataset(seed=7, scale=0.02)
    packets = [p for flow in list(lab)[:30] for p in flow.packets]
    rng = SeededRNG(9)
    for i in range(400):
        tcp = TCPHeader(src_port=40000 + i % 200,
                        dst_port=8080 if i % 3 else 443,
                        seq=i, flag_ack=True)
        packets.append(make_tcp_packet(
            f"10.{i % 60}.5.2", "93.184.216.34", tcp,
            payload=rng.token_bytes(280), timestamp=5.0 + i * 0.01))
    packets.sort(key=lambda p: p.timestamp)
    path = tmp_path_factory.mktemp("shm-pcap") / "t.pcap"
    with PcapWriter(path) as writer:
        for p in packets:
            writer.write_bytes(p.to_bytes(), p.timestamp)
    oracle = ShardedPipeline(bank, num_shards=2, batch_size=4)
    ingest_pcap(oracle, path, mode="raw")
    oracle.flush()
    rows = sorted((str(r.key), r.prediction.status,
                   r.prediction.platform) for r in oracle.store)
    return path, asdict(oracle.counters), rows


def _rows(par):
    return sorted((str(r.key), r.prediction.status,
                   r.prediction.platform) for r in par.telemetry)


class TestShmPipeline:
    def test_rejects_unknown_transport(self, bank_dir):
        with pytest.raises(ValueError):
            ParallelShardedPipeline(bank_dir, num_workers=1,
                                    transport="smoke-signals")
        assert set(TRANSPORTS) == {"queue", "shm"}

    def test_tiny_ring_forces_wrap_and_backpressure(self, bank_dir,
                                                    capture):
        """With an 8 KiB ring the capture wraps the ring hundreds of
        times and the producer regularly runs into backpressure; the
        result must not move."""
        path, counters, rows = capture
        with ParallelShardedPipeline(bank_dir, num_workers=2,
                                     batch_size=4, transport="shm",
                                     ring_bytes=8192) as par:
            ingest_pcap(par, path, mode="bulk")
            par.flush()
            assert asdict(par.counters) == counters
            assert _rows(par) == rows

    def test_sigkilled_worker_respawns_on_fresh_ring(self, bank_dir,
                                                     capture, tmp_path):
        """PR 5 contract under shm: SIGKILL a worker mid-capture, the
        journal replays onto a respawn with a *new* ring segment, the
        old segment is unlinked, and the state matches the oracle."""
        path, counters, rows = capture
        with ParallelShardedPipeline(bank_dir, num_workers=2,
                                     batch_size=4, transport="shm",
                                     checkpoint_dir=tmp_path / "jrn"
                                     ) as par:
            ingest_pcap(par, path, mode="bulk")
            old_name = par._rings[1].name
            victim = par._workers[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            ingest_pcap(par, path, mode="bulk")
            par.flush()
            assert sum(par._restarts) >= 1
            assert par._rings[1].name != old_name
            assert not _segment_exists(old_name)

    def test_segments_cleaned_on_close_and_terminate(self, bank_dir,
                                                     capture):
        path, counters, rows = capture
        # normal exit
        par = ParallelShardedPipeline(bank_dir, num_workers=2,
                                      transport="shm")
        names = [ring.name for ring in par._rings]
        ingest_pcap(par, path, mode="bulk")
        par.close()
        assert not any(map(_segment_exists, names))
        # crash-style exit
        par = ParallelShardedPipeline(bank_dir, num_workers=2,
                                      transport="shm")
        names = [ring.name for ring in par._rings]
        ingest_pcap(par, path, mode="bulk")
        par.terminate()
        assert not any(map(_segment_exists, names))

    def test_queue_transport_allocates_no_segments(self, bank_dir):
        with ParallelShardedPipeline(bank_dir, num_workers=1,
                                     transport="queue") as par:
            assert all(ring is None for ring in par._rings)
