"""Perf regression guard (marked ``perf``; deselect with -m "not perf").

A vectorization regression in the packed forest, the batch encoder,
``classify_batch`` grouping, or the zero-copy ingest layer would
silently rot throughput while every functional test stays green. Two
floors are pinned here: on a 500-flow corpus the batched classification
path must not be slower than the per-flow path, and on a bulk-dominated
campus trace the raw-frame ingest path must not be slower than eager
per-packet ``Packet.from_bytes`` (in practice both are several times
faster; the assertions only fail on genuine regressions).
"""

import time

import pytest

from repro.features.extract import extract_attributes, parse_flow_handshake
from repro.fingerprints.providers import detect_provider
from repro.ml import RandomForestClassifier
from repro.net import Packet, TCPHeader, make_tcp_packet
from repro.pipeline import ClassifierBank, RealtimePipeline
from repro.trafficgen import generate_lab_dataset
from repro.util import SeededRNG


@pytest.mark.perf
def test_batched_classification_not_slower():
    lab = generate_lab_dataset(seed=33, scale=0.06)
    bank = ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=8, max_depth=16, random_state=1),
    )
    flows = list(lab)[:500]
    assert len(flows) >= 400  # corpus sanity
    items = []
    for flow in flows:
        record = parse_flow_handshake(flow.packets)
        items.append((detect_provider(record.sni), record.transport,
                      extract_attributes(record)))

    bank.classify_batch(items)  # warm packed-forest caches

    def time_single():
        start = time.perf_counter()
        predictions = [bank.classify(p, t, a) for p, t, a in items]
        return time.perf_counter() - start, predictions

    def time_batched():
        start = time.perf_counter()
        predictions = bank.classify_batch(items)
        return time.perf_counter() - start, predictions

    t_single, ref = min((time_single() for _ in range(3)),
                        key=lambda r: r[0])
    t_batched, batch = min((time_batched() for _ in range(3)),
                           key=lambda r: r[0])
    assert batch == ref  # perf must never come at the cost of fidelity
    assert t_batched <= t_single, (
        f"batched path slower than per-flow path: "
        f"{t_batched:.3f}s vs {t_single:.3f}s over {len(items)} flows")


@pytest.mark.perf
def test_raw_ingest_not_slower_than_eager():
    """Ingest floor: on a campus-mix trace dominated by non-video bulk
    (the regime the paper's tap lives in), ``process_frames`` must beat
    feeding eager ``Packet.from_bytes`` packets one by one — and must
    produce identical counters and telemetry while doing it."""
    lab = generate_lab_dataset(seed=44, scale=0.04)
    bank = ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=6, max_depth=14, random_state=1),
    )
    video = [pkt for flow in list(lab)[:60] for pkt in flow.packets]
    rng = SeededRNG(3)
    bulk = []
    for i in range(3000):
        tcp = TCPHeader(src_port=40000 + i % 700, dst_port=8080,
                        seq=i * 512, flag_ack=True)
        bulk.append(make_tcp_packet(
            f"10.{i % 120}.9.1", "93.184.216.34", tcp,
            payload=rng.token_bytes(600), timestamp=5.0 + i * 1e-4))
    packets = video + bulk
    frames = [(p.to_bytes(), p.timestamp) for p in packets]

    def time_eager():
        pipeline = RealtimePipeline(bank, batch_size=32)
        start = time.perf_counter()
        for data, timestamp in frames:
            pipeline.process_packet(Packet.from_bytes(data, timestamp))
        pipeline.flush()
        return time.perf_counter() - start, pipeline

    def time_raw():
        pipeline = RealtimePipeline(bank, batch_size=32)
        start = time.perf_counter()
        pipeline.process_frames(frames)
        pipeline.flush()
        return time.perf_counter() - start, pipeline

    t_eager, ref = min((time_eager() for _ in range(3)),
                       key=lambda r: r[0])
    t_raw, fast = min((time_raw() for _ in range(3)),
                      key=lambda r: r[0])
    assert fast.counters == ref.counters
    assert list(fast.store) == list(ref.store)
    assert t_raw <= t_eager, (
        f"raw ingest slower than eager from_bytes: "
        f"{t_raw:.3f}s vs {t_eager:.3f}s over {len(frames)} frames")
