"""Perf regression guard (marked ``perf``; deselect with -m "not perf").

A vectorization regression in the packed forest, the batch encoder, or
``classify_batch`` grouping would silently rot throughput while every
functional test stays green. This smoke test pins the floor: on a
500-flow corpus the batched classification path must not be slower than
the per-flow path (in practice it is several times faster; the
assertion only fails when batching genuinely regresses).
"""

import time

import pytest

from repro.features.extract import extract_attributes, parse_flow_handshake
from repro.fingerprints.providers import detect_provider
from repro.ml import RandomForestClassifier
from repro.pipeline import ClassifierBank
from repro.trafficgen import generate_lab_dataset


@pytest.mark.perf
def test_batched_classification_not_slower():
    lab = generate_lab_dataset(seed=33, scale=0.06)
    bank = ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=8, max_depth=16, random_state=1),
    )
    flows = list(lab)[:500]
    assert len(flows) >= 400  # corpus sanity
    items = []
    for flow in flows:
        record = parse_flow_handshake(flow.packets)
        items.append((detect_provider(record.sni), record.transport,
                      extract_attributes(record)))

    bank.classify_batch(items)  # warm packed-forest caches

    def time_single():
        start = time.perf_counter()
        predictions = [bank.classify(p, t, a) for p, t, a in items]
        return time.perf_counter() - start, predictions

    def time_batched():
        start = time.perf_counter()
        predictions = bank.classify_batch(items)
        return time.perf_counter() - start, predictions

    t_single, ref = min((time_single() for _ in range(3)),
                        key=lambda r: r[0])
    t_batched, batch = min((time_batched() for _ in range(3)),
                           key=lambda r: r[0])
    assert batch == ref  # perf must never come at the cost of fidelity
    assert t_batched <= t_single, (
        f"batched path slower than per-flow path: "
        f"{t_batched:.3f}s vs {t_single:.3f}s over {len(items)} flows")
