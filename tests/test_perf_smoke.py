"""Perf regression guard (marked ``perf``; deselect with -m "not perf").

A vectorization regression in the packed forest, the batch encoder,
``classify_batch`` grouping, or the zero-copy ingest layer would
silently rot throughput while every functional test stays green. Three
floors are pinned here: on a 500-flow corpus the batched classification
path must not be slower than the per-flow path; on a bulk-dominated
campus trace the raw-frame ingest path must not be slower than eager
per-packet ``Packet.from_bytes``; and on a 443-heavy mix the
multiprocess shard runtime must reach ≥1.5x pkt/s at 4 workers vs 1
(machines with ≥4 cores only — fewer cores time-slice the workers and
there is nothing to scale onto). In practice every floor clears with
margin; the assertions only fail on genuine regressions.
"""

import os
import time

import pytest

from repro.features.extract import extract_attributes, parse_flow_handshake
from repro.fingerprints import Provider, Transport, UserPlatform, get_profile
from repro.fingerprints.providers import detect_provider
from repro.ml import RandomForestClassifier
from repro.net import Packet, TCPHeader, make_tcp_packet
from repro.pipeline import (
    ClassifierBank,
    ParallelShardedPipeline,
    RealtimePipeline,
    save_bank,
)
from repro.trafficgen import FlowBuildRequest, FlowFactory, generate_lab_dataset
from repro.util import SeededRNG


@pytest.mark.perf
def test_batched_classification_not_slower():
    lab = generate_lab_dataset(seed=33, scale=0.06)
    bank = ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=8, max_depth=16, random_state=1),
    )
    flows = list(lab)[:500]
    assert len(flows) >= 400  # corpus sanity
    items = []
    for flow in flows:
        record = parse_flow_handshake(flow.packets)
        items.append((detect_provider(record.sni), record.transport,
                      extract_attributes(record)))

    bank.classify_batch(items)  # warm packed-forest caches

    def time_single():
        start = time.perf_counter()
        predictions = [bank.classify(p, t, a) for p, t, a in items]
        return time.perf_counter() - start, predictions

    def time_batched():
        start = time.perf_counter()
        predictions = bank.classify_batch(items)
        return time.perf_counter() - start, predictions

    t_single, ref = min((time_single() for _ in range(3)),
                        key=lambda r: r[0])
    t_batched, batch = min((time_batched() for _ in range(3)),
                           key=lambda r: r[0])
    assert batch == ref  # perf must never come at the cost of fidelity
    assert t_batched <= t_single, (
        f"batched path slower than per-flow path: "
        f"{t_batched:.3f}s vs {t_single:.3f}s over {len(items)} flows")


@pytest.mark.perf
def test_raw_ingest_not_slower_than_eager():
    """Ingest floor: on a campus-mix trace dominated by non-video bulk
    (the regime the paper's tap lives in), ``process_frames`` must beat
    feeding eager ``Packet.from_bytes`` packets one by one — and must
    produce identical counters and telemetry while doing it."""
    lab = generate_lab_dataset(seed=44, scale=0.04)
    bank = ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=6, max_depth=14, random_state=1),
    )
    video = [pkt for flow in list(lab)[:60] for pkt in flow.packets]
    rng = SeededRNG(3)
    bulk = []
    for i in range(3000):
        tcp = TCPHeader(src_port=40000 + i % 700, dst_port=8080,
                        seq=i * 512, flag_ack=True)
        bulk.append(make_tcp_packet(
            f"10.{i % 120}.9.1", "93.184.216.34", tcp,
            payload=rng.token_bytes(600), timestamp=5.0 + i * 1e-4))
    packets = video + bulk
    frames = [(p.to_bytes(), p.timestamp) for p in packets]

    def time_eager():
        pipeline = RealtimePipeline(bank, batch_size=32)
        start = time.perf_counter()
        for data, timestamp in frames:
            pipeline.process_packet(Packet.from_bytes(data, timestamp))
        pipeline.flush()
        return time.perf_counter() - start, pipeline

    def time_raw():
        pipeline = RealtimePipeline(bank, batch_size=32)
        start = time.perf_counter()
        pipeline.process_frames(frames)
        pipeline.flush()
        return time.perf_counter() - start, pipeline

    t_eager, ref = min((time_eager() for _ in range(3)),
                       key=lambda r: r[0])
    t_raw, fast = min((time_raw() for _ in range(3)),
                      key=lambda r: r[0])
    assert fast.counters == ref.counters
    assert list(fast.store) == list(ref.store)
    assert t_raw <= t_eager, (
        f"raw ingest slower than eager from_bytes: "
        f"{t_raw:.3f}s vs {t_eager:.3f}s over {len(frames)} frames")


@pytest.mark.perf
@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="scaling floor needs >= 4 cores")
def test_parallel_workers_scale_throughput(tmp_path):
    """Parallel-runtime floor: on a 443-heavy mix (per-packet work
    concentrated in the workers, not the routing parent) 4 worker
    processes must reach ≥1.5x the pkt/s of 1 worker — and produce
    identical counters while doing it. Measured headroom: the
    worker-side pipeline costs ~6-7x the parent-side routing per
    frame, so the parent leaves ~4x of scaling on the table for the
    workers to claim; 1.5x only fails on a genuine serialization
    regression (routing grown expensive, chunking gone, a new barrier
    per frame)."""
    lab = generate_lab_dataset(seed=52, scale=0.05)
    bank = ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=6, max_depth=14, random_state=1))
    bank_dir = tmp_path / "bank"
    save_bank(bank, bank_dir)
    packets = [p for flow in list(lab)[:150] for p in flow.packets]
    factory = FlowFactory(SeededRNG(31))
    profile = get_profile(UserPlatform.from_label("windows_chrome"),
                          Provider.YOUTUBE)
    for i in range(600):
        flow = factory.build(FlowBuildRequest(
            platform_label="windows_chrome", provider=Provider.YOUTUBE,
            transport=Transport.TCP, profile=profile,
            sni=f"www.site{i}.example.org",
            client_ip=f"10.{i % 200}.4.{1 + i // 200}",
            start_time=20.0 + i * 0.01))
        packets.extend(flow.packets)
    packets.sort(key=lambda p: p.timestamp)
    frames = [(p.to_bytes(), p.timestamp) for p in packets]

    def run(workers):
        with ParallelShardedPipeline(bank_dir, num_workers=workers,
                                     batch_size=64) as pipeline:
            start = time.perf_counter()
            pipeline.process_frames(frames)
            pipeline.flush()
            elapsed = time.perf_counter() - start
            return elapsed, pipeline.counters

    t_one, ref = min((run(1) for _ in range(2)), key=lambda r: r[0])
    t_four, counters = min((run(4) for _ in range(2)),
                           key=lambda r: r[0])
    assert counters == ref
    scaling = t_one / t_four
    assert scaling >= 1.5, (
        f"4 workers reached only {scaling:.2f}x of 1 worker "
        f"({len(frames) / t_four:,.0f} vs {len(frames) / t_one:,.0f} "
        f"pkt/s) — below the 1.5x floor")
