"""Regenerate the golden-trace fixture (golden.pcap + expected.json).

Run from the repo root ONLY when an intentional behavior change moves
the pinned bytes::

    PYTHONPATH=src python tests/golden/make_golden_trace.py

and commit the updated fixture together with the change that moved it.
``tests/test_golden_trace.py`` replays the committed pcap through a
bank retrained in-test with the exact parameters below and fails on
any drift in counters, per-flow predictions, record order, or rollup
snapshot bytes — the cheapest tier-1 tripwire for every future
fast-path PR.

Everything here is seeded; regeneration on the same code is
byte-stable.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.fingerprints import Provider, Transport, UserPlatform, get_profile
from repro.ml import RandomForestClassifier
from repro.net import PcapWriter, TCPHeader, make_tcp_packet
from repro.pipeline import ClassifierBank
from repro.telemetry import save_rollup
from repro.trafficgen import (
    FlowBuildRequest,
    FlowFactory,
    generate_lab_dataset,
)
from repro.util import SeededRNG

HERE = Path(__file__).parent

# -- pinned generation parameters (mirrored in test_golden_trace.py) ----------
TRAIN_SEED = 29
TRAIN_SCALE = 0.05
MODEL_PARAMS = dict(n_estimators=6, max_depth=12, random_state=9)
TRACE_SEED = 61
TRACE_SCALE = 0.04


def model_factory():
    return RandomForestClassifier(**MODEL_PARAMS)


def train_bank() -> ClassifierBank:
    return ClassifierBank.train(
        generate_lab_dataset(seed=TRAIN_SEED, scale=TRAIN_SCALE),
        model_factory=model_factory)


def build_frames() -> list[tuple[bytes, float]]:
    """The golden campus mix: video flows of every scenario from a
    non-training seed, interleaved with non-video TLS, non-443 bulk,
    and a few unparseable frames — all timestamp-ordered."""
    lab = generate_lab_dataset(seed=TRACE_SEED, scale=TRACE_SCALE)
    flows = list(lab)[::4][:48]
    factory = FlowFactory(SeededRNG(101))
    profile = get_profile(UserPlatform.from_label("macOS_safari"),
                          Provider.NETFLIX)
    for i in range(6):
        flows.append(factory.build(FlowBuildRequest(
            platform_label="macOS_safari", provider=Provider.NETFLIX,
            transport=Transport.TCP, profile=profile,
            sni=f"cdn{i}.not-a-video.example.org",
            client_ip=f"10.{60 + i}.9.3", start_time=30.0 + 2 * i)))
    frames = [(p.to_bytes(), p.timestamp)
              for flow in flows for p in flow.packets]
    rng = SeededRNG(131)
    for i in range(40):
        tcp = TCPHeader(src_port=41000 + i, dst_port=8080 if i % 2
                        else 443, seq=i * 1400, flag_ack=True)
        bulk = make_tcp_packet(
            f"10.{i % 40}.7.7", "198.51.100.9", tcp,
            payload=rng.token_bytes(256), timestamp=5.0 + i * 1.7)
        frames.append((bulk.to_bytes(), bulk.timestamp))
    # Unparseable frames the replay must skip-and-count, not die on.
    frames.append((b"\x00" * 24, 11.0))
    frames.append((bytes.fromhex("ffffffffffff00000000000108060001"),
                   17.5))
    frames.sort(key=lambda pair: pair[1])
    return frames


def record_rows(store) -> list[list]:
    rows = []
    for r in store:
        p = r.prediction
        rows.append([
            str(r.key), r.provider.value, r.transport.value, r.role,
            r.start_time, r.duration, r.bytes_down, r.bytes_up,
            p.status, p.platform, p.device, p.agent, p.confidence,
        ])
    return rows


def rollup_digest(cube, workdir: Path, tag: str) -> str:
    target = workdir / f"rollup-{tag}"
    save_rollup(cube, target)
    return hashlib.sha256(
        (target / "rollup.json").read_bytes()).hexdigest()


def main() -> None:
    import tempfile

    from dataclasses import asdict

    from repro.pipeline import RealtimePipeline, ShardedPipeline, \
        ingest_pcap

    frames = build_frames()
    pcap = HERE / "golden.pcap"
    with PcapWriter(pcap) as writer:
        for data, timestamp in frames:
            writer.write_bytes(data, timestamp)

    bank = train_bank()
    workdir = Path(tempfile.mkdtemp(prefix="golden-"))

    serial = RealtimePipeline(bank, batch_size=8, retention="both")
    result = ingest_pcap(serial, pcap)
    serial.flush()

    sharded = ShardedPipeline(bank, num_shards=3, batch_size=8,
                              retention="both")
    ingest_pcap(sharded, pcap)
    sharded.flush()

    expected = {
        "_generator": {
            "train_seed": TRAIN_SEED, "train_scale": TRAIN_SCALE,
            "model_params": MODEL_PARAMS,
            "trace_seed": TRACE_SEED, "trace_scale": TRACE_SCALE,
        },
        "ingest": {"frames": result.frames, "skipped": result.skipped},
        "counters": asdict(serial.counters),
        "records": record_rows(serial.store),
        "rollup_sha256_serial": rollup_digest(serial.rollup, workdir,
                                              "serial"),
        "rollup_sha256_sharded3": rollup_digest(sharded.rollup, workdir,
                                                "sharded3"),
    }
    (HERE / "expected.json").write_text(
        json.dumps(expected, sort_keys=True, indent=1))
    print(f"wrote {pcap} ({pcap.stat().st_size} bytes) and "
          f"expected.json ({len(expected['records'])} records, "
          f"{expected['counters']['video_flows']} video flows, "
          f"{result.skipped} skipped frames)")


if __name__ == "__main__":
    main()
