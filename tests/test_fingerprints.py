"""Tests for the platform fingerprint library and CHLO builders."""

from dataclasses import replace

import pytest

from repro.errors import ConfigError
from repro.fingerprints import (
    ALL_PLATFORMS,
    DeviceClass,
    DeviceType,
    PROVIDER_SPECS,
    Provider,
    SoftwareAgent,
    TABLE1_FLOW_COUNTS,
    Transport,
    UserPlatform,
    YOUTUBE_QUIC_PLATFORMS,
    YOUTUBE_TCP_PLATFORMS,
    assert_library_consistent,
    build_client_hello,
    build_transport_parameters,
    detect_provider,
    drift_profile,
    get_profile,
    get_unknown_profile,
    supported_platforms,
    transports_for,
)
from repro.quic import TransportParameters
from repro.quic import transport_params as tp
from repro.tls import constants as c
from repro.util import SeededRNG


class TestIdentityModel:
    def test_seventeen_platforms(self):
        assert len(ALL_PLATFORMS) == 17

    def test_label_roundtrip(self):
        for platform in ALL_PLATFORMS:
            assert UserPlatform.from_label(platform.label) == platform

    def test_device_classes(self):
        assert DeviceType.WINDOWS.device_class is DeviceClass.PC
        assert DeviceType.IOS.device_class is DeviceClass.MOBILE
        assert DeviceType.PLAYSTATION.device_class is DeviceClass.TV

    def test_agent_is_browser(self):
        assert SoftwareAgent.CHROME.is_browser
        assert not SoftwareAgent.NATIVE_APP.is_browser


class TestSupportMatrix:
    def test_library_consistent(self):
        assert_library_consistent()

    def test_table1_total_near_10k(self):
        total = sum(TABLE1_FLOW_COUNTS.values())
        assert 9000 < total < 11000  # "nearly 10,000 flows"

    def test_provider_platform_counts(self):
        assert len(supported_platforms(Provider.YOUTUBE)) == 15
        assert len(supported_platforms(Provider.NETFLIX)) == 12
        assert len(supported_platforms(Provider.DISNEY)) == 12
        assert len(supported_platforms(Provider.AMAZON)) == 13

    def test_youtube_transport_split(self):
        assert len(YOUTUBE_QUIC_PLATFORMS) == 12  # Fig 12(a)
        assert len(YOUTUBE_TCP_PLATFORMS) == 14   # Fig 12(b)

    def test_android_native_youtube_is_quic_only(self):
        platform = UserPlatform.from_label("android_nativeApp")
        assert transports_for(platform, Provider.YOUTUBE) == \
            (Transport.QUIC,)

    def test_netflix_is_tcp_only(self):
        for platform in supported_platforms(Provider.NETFLIX):
            assert transports_for(platform, Provider.NETFLIX) == \
                (Transport.TCP,)

    def test_native_profile_missing_raises(self):
        with pytest.raises(ConfigError):
            get_profile(UserPlatform.from_label("windows_nativeApp"),
                        Provider.YOUTUBE)


class TestProfiles:
    def test_windows_ttl_differs_from_apple(self):
        win = get_profile(UserPlatform.from_label("windows_chrome"),
                          Provider.YOUTUBE)
        mac = get_profile(UserPlatform.from_label("macOS_chrome"),
                          Provider.YOUTUBE)
        assert win.tcp_stack.ttl == 128
        assert mac.tcp_stack.ttl == 64

    def test_firefox_has_record_size_limit_and_delegated_credentials(self):
        prof = get_profile(UserPlatform.from_label("windows_firefox"),
                           Provider.NETFLIX)
        assert prof.tls_tcp.record_size_limit == 16385
        assert prof.tls_tcp.delegated_credentials

    def test_firefox_quic_has_grease_quic_bit(self):
        prof = get_profile(UserPlatform.from_label("windows_firefox"),
                           Provider.YOUTUBE)
        assert "grease_quic_bit" in prof.quic.param_names()

    def test_only_chromium_sends_google_params(self):
        chrome = get_profile(UserPlatform.from_label("windows_chrome"),
                             Provider.YOUTUBE)
        firefox = get_profile(UserPlatform.from_label("windows_firefox"),
                              Provider.YOUTUBE)
        safari = get_profile(UserPlatform.from_label("macOS_safari"),
                             Provider.YOUTUBE)
        assert "user_agent" in chrome.quic.param_names()
        assert "user_agent" not in firefox.quic.param_names()
        assert "user_agent" not in safari.quic.param_names()

    def test_ps5_is_tls12_era(self):
        prof = get_profile(UserPlatform.from_label("ps5_nativeApp"),
                           Provider.NETFLIX)
        assert prof.tls_tcp.supported_versions == ()
        assert prof.tls_tcp.key_share_groups == ()

    def test_schannel_empty_session_id(self):
        prof = get_profile(UserPlatform.from_label("windows_nativeApp"),
                           Provider.NETFLIX)
        assert prof.tls_tcp.session_id_length == 0
        assert prof.tls_tcp.ec_point_formats == (0, 1, 2)

    def test_unknown_profiles_exist(self):
        for label in ("linux_chrome", "webOS_nativeApp"):
            prof = get_unknown_profile(label, Provider.YOUTUBE)
            assert prof.tcp_stack.ttl == 64
        with pytest.raises(ConfigError):
            get_unknown_profile("nokia_wap", Provider.YOUTUBE)


class TestHelloBuilder:
    def _profile(self, label="windows_chrome", provider=Provider.YOUTUBE):
        return get_profile(UserPlatform.from_label(label), provider)

    def test_grease_injected_for_chromium(self):
        prof = self._profile()
        hello = build_client_hello(prof.tls_tcp, "a.googlevideo.com",
                                   SeededRNG(5))
        from repro.tls import is_grease
        assert is_grease(hello.cipher_suites[0])
        assert is_grease(hello.supported_groups[0])
        grease_exts = [e for e in hello.extensions if is_grease(e.type)]
        assert len(grease_exts) == 2

    def test_no_grease_for_firefox(self):
        prof = self._profile("windows_firefox")
        hello = build_client_hello(prof.tls_tcp, "a.googlevideo.com",
                                   SeededRNG(5))
        from repro.tls import is_grease
        assert not any(is_grease(s) for s in hello.cipher_suites)

    def test_chrome_order_randomized_across_sessions(self):
        prof = self._profile()
        orders = set()
        for seed in range(8):
            hello = build_client_hello(prof.tls_tcp, "a.googlevideo.com",
                                       SeededRNG(seed))
            # Compare the order of non-GREASE extension types.
            from repro.tls import is_grease
            orders.add(tuple(t for t in hello.extension_types
                             if not is_grease(t)))
        assert len(orders) > 3  # randomized per session

    def test_firefox_order_stable(self):
        prof = self._profile("windows_firefox")
        orders = {
            tuple(build_client_hello(prof.tls_tcp, "a.example.com",
                                     SeededRNG(seed),
                                     resumption=False).extension_types)
            for seed in range(6)
        }
        assert len(orders) == 1

    def test_resumption_adds_psk_last(self):
        prof = self._profile("windows_firefox")
        hello = build_client_hello(prof.tls_tcp, "a.example.com",
                                   SeededRNG(2), resumption=True)
        assert hello.extensions[-1].type == c.EXT_PRE_SHARED_KEY

    def test_padding_hits_target(self):
        prof = self._profile()
        for seed in (1, 2, 3):
            hello = build_client_hello(prof.tls_tcp,
                                       "rr1---sn-xyz.googlevideo.com",
                                       SeededRNG(seed), resumption=False)
            assert hello.handshake_length + 4 == \
                prof.tls_tcp.padding_target

    def test_quic_transport_params_embedded_and_parse(self):
        prof = self._profile()
        rng = SeededRNG(4)
        scid = rng.token_bytes(prof.quic.scid_length)
        raw = build_transport_parameters(prof.quic, rng, scid)
        hello = build_client_hello(prof.tls_quic, "a.googlevideo.com",
                                   rng, quic_params=raw)
        ext = hello.extension(c.EXT_QUIC_TRANSPORT_PARAMETERS)
        assert ext is not None
        params = TransportParameters.parse(ext.data)
        assert params.get_varint(tp.TP_INITIAL_MAX_DATA) == 15728640
        assert "Chrome" in params.get_utf8(tp.TP_USER_AGENT)


class TestDrift:
    def test_drift_changes_something(self):
        prof = get_profile(UserPlatform.from_label("windows_chrome"),
                           Provider.YOUTUBE)
        drifted = drift_profile(prof, SeededRNG(9))
        assert drifted != prof

    def test_drift_deterministic(self):
        prof = get_profile(UserPlatform.from_label("macOS_safari"),
                           Provider.NETFLIX)
        assert drift_profile(prof, SeededRNG(3)) == \
            drift_profile(prof, SeededRNG(3))

    def test_drift_preserves_quic_support(self):
        prof = get_profile(UserPlatform.from_label("windows_firefox"),
                           Provider.YOUTUBE)
        drifted = drift_profile(prof, SeededRNG(11))
        assert drifted.supports_quic()

    def test_user_agent_version_bumped(self):
        prof = get_profile(UserPlatform.from_label("windows_chrome"),
                           Provider.YOUTUBE)
        drifted = drift_profile(prof, SeededRNG(1))
        ua = [p for p in drifted.quic.params if p.name == "user_agent"]
        assert "121.0" in str(ua[0].value)


class TestProviderDetection:
    @pytest.mark.parametrize("sni,expected", [
        ("rr4---sn-q4fl6n6r.googlevideo.com", Provider.YOUTUBE),
        ("www.youtube.com", Provider.YOUTUBE),
        ("ipv4-c012-ixp-syd1.1.oca.nflxvideo.net", Provider.NETFLIX),
        ("vod-akc-oc3.media.dssott.com", Provider.DISNEY),
        ("atv-ps.amazon.com", Provider.AMAZON),
        ("www.primevideo.com", Provider.AMAZON),
        ("example.com", None),
        ("", None),
        (None, None),
    ])
    def test_detect(self, sni, expected):
        assert detect_provider(sni) is expected

    @pytest.mark.parametrize("sni,expected", [
        # DNS names are case-insensitive; real ClientHellos mix case.
        ("RR4---SN-Q4FL6N6R.GoogleVideo.com", Provider.YOUTUBE),
        ("WWW.YOUTUBE.COM", Provider.YOUTUBE),
        ("Vod-Akc-Oc3.Media.DSSOTT.com", Provider.DISNEY),
        # A fully-qualified SNI may carry the root-zone trailing dot.
        ("www.netflix.com.", Provider.NETFLIX),
        ("atv-ps.amazon.com.", Provider.AMAZON),
        ("RR4---sn-x.googlevideo.COM.", Provider.YOUTUBE),
        # A suffix must match on label boundaries, not substrings.
        ("evilgooglevideo.com", None),
        ("googlevideo.com.attacker.example", None),
    ])
    def test_detect_normalizes_case_and_trailing_dot(self, sni,
                                                     expected):
        assert detect_provider(sni) is expected

    def test_detect_normalizes_configured_suffixes_too(self):
        """Packs may carry suffixes in any case or with trailing dots;
        both sides of the comparison are normalized."""
        spec = PROVIDER_SPECS[Provider.NETFLIX]
        shouting = {Provider.NETFLIX: replace(
            spec, sni_suffixes=(".NflxVideo.NET.", "WWW.NETFLIX.COM"))}
        assert detect_provider("ipv4-c1-ix-syd1.1.oca.nflxvideo.net",
                               specs=shouting) is Provider.NETFLIX
        assert detect_provider("www.netflix.com.",
                               specs=shouting) is Provider.NETFLIX
        assert detect_provider("api-global.netflix.com",
                               specs=shouting) is None

    def test_detect_bare_suffix_matches_the_apex(self):
        # ".youtube.com" admits both subdomains and the apex itself.
        assert detect_provider("youtube.com") is Provider.YOUTUBE
