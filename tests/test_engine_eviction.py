"""Tests for the engine's idle-flow eviction (flow-table bounding)."""

import pytest

from repro.ml import RandomForestClassifier
from repro.pipeline import ClassifierBank, RealtimePipeline
from repro.trafficgen import generate_lab_dataset


@pytest.fixture(scope="module")
def setup():
    lab = generate_lab_dataset(seed=91, scale=0.04)
    bank = ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=4, max_depth=10, random_state=0))
    return lab, bank


class TestIdleEviction:
    def test_idle_flows_evicted_and_recorded(self, setup):
        lab, bank = setup
        pipeline = RealtimePipeline(bank)
        flows = [f for f in lab][:10]
        last_ts = 0.0
        for flow in flows:
            for packet in flow.packets:
                pipeline.process_packet(packet)
                last_ts = max(last_ts, packet.timestamp)
        live_before = pipeline.live_flows
        assert live_before == 10
        emitted = pipeline.flush_idle(now=last_ts + 300.0,
                                      idle_timeout=120.0)
        assert pipeline.live_flows == 0
        assert emitted == len(pipeline.store)
        assert emitted > 0

    def test_recent_flows_survive_eviction(self, setup):
        lab, bank = setup
        pipeline = RealtimePipeline(bank)
        flows = [f for f in lab][:6]
        # First three flows finish early; last three are "recent".
        for i, flow in enumerate(flows):
            shift = 0.0 if i < 3 else 10_000.0
            for packet in flow.packets:
                from dataclasses import replace

                pipeline.process_packet(
                    replace(packet, timestamp=packet.timestamp + shift))
        pipeline.flush_idle(now=10_000.5, idle_timeout=120.0)
        assert pipeline.live_flows == 3
        # The remaining ones flush normally later.
        pipeline.flush()
        assert pipeline.live_flows == 0

    def test_eviction_skips_unclassified_garbage(self, setup):
        _, bank = setup
        from repro.net import TCPHeader, make_tcp_packet

        pipeline = RealtimePipeline(bank)
        packet = make_tcp_packet(
            "10.0.0.1", "10.0.0.2",
            TCPHeader(src_port=5555, dst_port=443, flag_syn=True),
            timestamp=1.0)
        pipeline.process_packet(packet)
        emitted = pipeline.flush_idle(now=1000.0, idle_timeout=10.0)
        assert emitted == 0
        assert pipeline.live_flows == 0
