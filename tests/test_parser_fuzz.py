"""Adversarial/fuzz tests: every parser must fail *cleanly* — with
ParseError or CryptoError, never an unhandled exception — on arbitrary
or mutated bytes. A border-tap pipeline sees every kind of garbage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CryptoError, ParseError
from repro.net import Packet, TCPHeader, UDPHeader, IPv4Header
from repro.quic import (
    TransportParameters,
    decode_varint,
    unprotect_client_initial,
)
from repro.tls import extract_handshake_payload
from repro.tls.clienthello import ClientHello

CLEAN_ERRORS = (ParseError, CryptoError)


class TestRandomBytes:
    @given(st.binary(max_size=200))
    def test_packet_parser_never_crashes(self, data):
        try:
            Packet.from_bytes(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(max_size=120))
    def test_tcp_parser_never_crashes(self, data):
        try:
            TCPHeader.parse(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(max_size=60))
    def test_udp_parser_never_crashes(self, data):
        try:
            UDPHeader.parse(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(max_size=60))
    def test_ipv4_parser_never_crashes(self, data):
        try:
            IPv4Header.parse(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(max_size=400))
    def test_client_hello_parser_never_crashes(self, data):
        try:
            ClientHello.parse_handshake(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(max_size=400))
    def test_record_layer_never_crashes(self, data):
        try:
            extract_handshake_payload(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(max_size=300))
    def test_transport_params_never_crash(self, data):
        try:
            TransportParameters.parse(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(min_size=1, max_size=1500))
    @settings(max_examples=40)
    def test_quic_unprotect_never_crashes(self, data):
        try:
            unprotect_client_initial(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(max_size=12))
    def test_varint_never_crashes(self, data):
        try:
            value, used = decode_varint(data)
            assert 0 <= value < (1 << 62)
            assert 0 < used <= len(data)
        except CLEAN_ERRORS:
            pass


def _valid_hello_bytes() -> bytes:
    from repro.fingerprints import Provider, UserPlatform, get_profile
    from repro.fingerprints.specs import build_client_hello
    from repro.util import SeededRNG

    profile = get_profile(UserPlatform.from_label("windows_firefox"),
                          Provider.NETFLIX)
    hello = build_client_hello(profile.tls_tcp, "a.nflxvideo.net",
                               SeededRNG(1), resumption=False)
    return hello.to_handshake_bytes()


class TestMutatedValidMessages:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=120)
    def test_single_byte_mutation_parses_or_fails_cleanly(self, pos,
                                                          value):
        data = bytearray(_valid_hello_bytes())
        data[pos % len(data)] = value
        try:
            hello = ClientHello.parse_handshake(bytes(data))
            # If it still parses, the invariants must hold.
            assert len(hello.random) == 32
            assert isinstance(hello.cipher_suites, tuple)
        except CLEAN_ERRORS:
            pass

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60)
    def test_truncation_fails_cleanly(self, cut):
        data = _valid_hello_bytes()
        truncated = data[:cut % len(data)]
        try:
            ClientHello.parse_handshake(truncated)
        except CLEAN_ERRORS:
            pass
