"""Adversarial/fuzz tests: every parser must fail *cleanly* — with
ParseError or CryptoError, never an unhandled exception — on arbitrary
or mutated bytes. A border-tap pipeline sees every kind of garbage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CryptoError, ParseError
from repro.net import Packet, TCPHeader, UDPHeader, IPv4Header
from repro.quic import (
    TransportParameters,
    decode_varint,
    unprotect_client_initial,
)
from repro.tls import extract_handshake_payload
from repro.tls.clienthello import ClientHello

CLEAN_ERRORS = (ParseError, CryptoError)


class TestRandomBytes:
    @given(st.binary(max_size=200))
    def test_packet_parser_never_crashes(self, data):
        try:
            Packet.from_bytes(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(max_size=120))
    def test_tcp_parser_never_crashes(self, data):
        try:
            TCPHeader.parse(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(max_size=60))
    def test_udp_parser_never_crashes(self, data):
        try:
            UDPHeader.parse(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(max_size=60))
    def test_ipv4_parser_never_crashes(self, data):
        try:
            IPv4Header.parse(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(max_size=400))
    def test_client_hello_parser_never_crashes(self, data):
        try:
            ClientHello.parse_handshake(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(max_size=400))
    def test_record_layer_never_crashes(self, data):
        try:
            extract_handshake_payload(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(max_size=300))
    def test_transport_params_never_crash(self, data):
        try:
            TransportParameters.parse(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(min_size=1, max_size=1500))
    @settings(max_examples=40)
    def test_quic_unprotect_never_crashes(self, data):
        try:
            unprotect_client_initial(data)
        except CLEAN_ERRORS:
            pass

    @given(st.binary(max_size=12))
    def test_varint_never_crashes(self, data):
        try:
            value, used = decode_varint(data)
            assert 0 <= value < (1 << 62)
            assert 0 < used <= len(data)
        except CLEAN_ERRORS:
            pass


def _valid_hello_bytes() -> bytes:
    from repro.fingerprints import Provider, UserPlatform, get_profile
    from repro.fingerprints.specs import build_client_hello
    from repro.util import SeededRNG

    profile = get_profile(UserPlatform.from_label("windows_firefox"),
                          Provider.NETFLIX)
    hello = build_client_hello(profile.tls_tcp, "a.nflxvideo.net",
                               SeededRNG(1), resumption=False)
    return hello.to_handshake_bytes()


class TestMutatedValidMessages:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=120)
    def test_single_byte_mutation_parses_or_fails_cleanly(self, pos,
                                                          value):
        data = bytearray(_valid_hello_bytes())
        data[pos % len(data)] = value
        try:
            hello = ClientHello.parse_handshake(bytes(data))
            # If it still parses, the invariants must hold.
            assert len(hello.random) == 32
            assert isinstance(hello.cipher_suites, tuple)
        except CLEAN_ERRORS:
            pass

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60)
    def test_truncation_fails_cleanly(self, cut):
        data = _valid_hello_bytes()
        truncated = data[:cut % len(data)]
        try:
            ClientHello.parse_handshake(truncated)
        except CLEAN_ERRORS:
            pass


# --- QUIC Initial mutation corpus ---------------------------------------------
#
# A border tap sees hostile and half-broken QUIC as surely as hostile
# TLS: every mutant of a *valid, decryptable* client Initial must fail
# cleanly (ParseError/CryptoError, never an unhandled exception), and
# the zero-copy raw ingest path must reject exactly the same mutants
# the eager path rejects — the rejection-parity half of the PR 3
# ingest equivalence contract, extended to the QUIC surface.

import random

from repro.features.extract import parse_flow_handshake
from repro.fingerprints import Provider, UserPlatform, get_profile
from repro.fingerprints.specs import (
    build_client_hello,
    build_transport_parameters,
)
from repro.net import make_udp_packet
from repro.net.rawpacket import RawPacket
from repro.pipeline.engine import RealtimePipeline
from repro.quic import QuicInitial, protect_client_initial
from repro.quic.initial import build_crypto_frame, extract_crypto_stream
from repro.quic.varint import encode_varint
from repro.util import SeededRNG


def _valid_quic_initial() -> bytes:
    """A protected, decryptable client Initial built exactly the way
    the trace generator builds them."""
    profile = get_profile(UserPlatform.from_label("windows_chrome"),
                          Provider.YOUTUBE)
    rng = SeededRNG(5)
    dcid = rng.token_bytes(profile.quic.dcid_length)
    scid = rng.token_bytes(profile.quic.scid_length)
    params = build_transport_parameters(profile.quic, rng, scid)
    hello = build_client_hello(profile.tls_quic, "www.youtube.com", rng,
                               quic_params=params,
                               alpn_override=("h3",),
                               resumption=False)
    initial = QuicInitial(dcid=dcid, scid=scid,
                          payload=build_crypto_frame(
                              hello.to_handshake_bytes()))
    return protect_client_initial(
        initial, pn_length=profile.quic.packet_number_length,
        min_datagram_size=profile.quic.datagram_size)


def _mutation_corpus() -> list[tuple[str, bytes]]:
    """Deterministic (seeded) mutants of the valid Initial: truncated
    CRYPTO frames, flipped header-protection bytes, oversized/invalid
    varints, short and oversized DCIDs, plus random byte flips and
    truncations across the datagram."""
    valid = _valid_quic_initial()
    rng = random.Random(0xC0FFEE)
    corpus: list[tuple[str, bytes]] = []

    def mutate(tag, data):
        corpus.append((tag, bytes(data)))

    # Flipped header-protection territory: the first byte's protected
    # bits and every byte of the pn/sample region.
    for bit in range(8):
        data = bytearray(valid)
        data[0] ^= 1 << bit
        mutate(f"first-byte-bit{bit}", data)
    for _ in range(24):
        data = bytearray(valid)
        pos = 7 + rng.randrange(len(valid) - 8)
        data[pos] ^= 1 + rng.randrange(255)
        mutate(f"flip@{pos}", data)

    # Truncations: through the header, through the CRYPTO payload.
    for _ in range(16):
        cut = rng.randrange(1, len(valid))
        mutate(f"trunc@{cut}", valid[:cut])

    # DCID length abuse: short (keys derive but AEAD fails), oversized
    # (>20, structurally invalid), and a length that overruns.
    for dcid_len in (0, 1, 4, 7, 21, 255):
        data = bytearray(valid)
        data[5] = dcid_len
        mutate(f"dcid-len{dcid_len}", data)

    # Varint abuse in the token-length field: an 8-byte varint
    # claiming a giant token, and a truncated varint at the very end.
    header = bytearray(valid[:6 + valid[5] + 1 + valid[6 + valid[5]]])
    giant = bytes(header) + encode_varint((1 << 61) - 1)
    mutate("giant-token-varint", giant + valid[len(header):])
    mutate("dangling-varint", bytes(header) + b"\xc0")

    # Oversized length varint: body length far past the datagram.
    mutate("oversized-length",
           bytes(header) + encode_varint(0) + encode_varint(1 << 20)
           + valid[len(header) + 2:])

    # Wrong version / not-initial type bits.
    data = bytearray(valid)
    data[1:5] = (0xBABABABA).to_bytes(4, "big")
    mutate("bad-version", data)
    data = bytearray(valid)
    data[0] |= 0x30  # long header, but type = Retry
    mutate("retry-type", data)
    return corpus


def _crypto_frame_mutants() -> list[tuple[str, bytes]]:
    """Plaintext-payload mutants sealed with *valid* crypto, so the
    frame parser (not the AEAD) is the code under test: truncated
    CRYPTO frames, gaps, unknown frames, length overruns."""
    hello = _valid_hello_bytes()
    cases = [
        ("crypto-truncated-length",
         bytes([0x06]) + encode_varint(0) + encode_varint(len(hello) * 4)
         + hello[:40]),
        ("crypto-gap", build_crypto_frame(hello[:50], offset=64)),
        ("crypto-unknown-frame", b"\x1c" + hello[:30]),
        ("crypto-empty", b"\x00" * 64),
        ("crypto-dangling-varint", bytes([0x06]) + b"\xff"),
    ]
    out = []
    for tag, payload in cases:
        initial = QuicInitial(dcid=b"\x11" * 8, scid=b"\x22" * 8,
                              payload=payload)
        out.append((tag, protect_client_initial(initial)))
    return out


class TestQuicInitialMutations:
    CORPUS = _mutation_corpus() + _crypto_frame_mutants()

    @pytest.mark.parametrize("tag,datagram",
                             CORPUS, ids=[t for t, _ in CORPUS])
    def test_unprotect_fails_cleanly(self, tag, datagram):
        try:
            initial = unprotect_client_initial(datagram)
            # Mutants that survive (a flip in padding, say) must still
            # have produced a coherent CRYPTO stream.
            assert isinstance(initial.crypto_stream, bytes)
        except CLEAN_ERRORS:
            pass

    @pytest.mark.parametrize("tag,datagram",
                             CORPUS, ids=[t for t, _ in CORPUS])
    def test_raw_vs_eager_rejection_parity(self, tag, datagram):
        """Wrapped in a UDP/443 frame, every mutant must drive
        parse_flow_handshake to the same outcome through the eager
        packet path and the zero-copy raw path."""
        frame = make_udp_packet("10.0.0.1", "93.184.216.34", 50000, 443,
                                payload=datagram).to_bytes()

        def outcome(packet):
            try:
                record = parse_flow_handshake([packet])
                return ("ok", record.transport, record.sni)
            except CLEAN_ERRORS as exc:
                return ("rejected", type(exc).__name__)

        eager = outcome(Packet.from_bytes(frame, 1.0))
        raw = outcome(RawPacket.parse(frame, 1.0).promote())
        assert eager == raw

    def test_pipeline_survives_whole_corpus(self, quic_fuzz_bank):
        """The full mutant corpus through a live pipeline: no crash,
        and eager/raw counters stay identical."""
        eager = RealtimePipeline(quic_fuzz_bank)
        raw = RealtimePipeline(quic_fuzz_bank)
        for i, (tag, datagram) in enumerate(self.CORPUS):
            frame = make_udp_packet(f"10.1.{i % 200}.2", "93.184.216.34",
                                    40000 + i, 443,
                                    payload=datagram).to_bytes()
            eager.process_packet(Packet.from_bytes(frame, float(i)))
            raw.process_frame(frame, float(i))
        eager.flush()
        raw.flush()
        assert eager.counters == raw.counters

    def test_valid_initial_still_parses(self):
        initial = unprotect_client_initial(_valid_quic_initial())
        hello = ClientHello.parse_handshake(initial.crypto_stream)
        assert hello.server_name == "www.youtube.com"

    def test_crypto_stream_reassembly_rejects_gap(self):
        with pytest.raises(ParseError):
            extract_crypto_stream(build_crypto_frame(b"x" * 10,
                                                     offset=5))


@pytest.fixture(scope="module")
def quic_fuzz_bank():
    from repro.ml import RandomForestClassifier
    from repro.pipeline import ClassifierBank
    from repro.trafficgen import generate_lab_dataset

    return ClassifierBank.train(
        generate_lab_dataset(seed=3, scale=0.02),
        model_factory=lambda: RandomForestClassifier(
            n_estimators=2, max_depth=6, random_state=0))


# --- Vectorized bulk decode: the per-frame parser is the oracle ---------------
#
# decode_block() promises to accept/reject exactly the frames
# RawPacket.parse accepts/rejects and to extract identical fields for
# the accepted ones. These property tests drive that contract with
# random bytes, mutated valid frames, truncations, zero/max-length
# frames, packed-wire-format corruption, pcap records straddling block
# boundaries, and the full QUIC mutant corpus through bulk ingest.

from dataclasses import replace

from repro.net import EthernetHeader, PcapReader, PcapWriter, TCPHeader
from repro.net import make_tcp_packet
from repro.net.rawpacket import FrameBlock, decode_block


def _base_frames() -> list[bytes]:
    """Valid frames of every interesting shape: TCP/443, UDP/443, a
    VLAN-tagged frame, a non-443 frame, a SYN, and a capture-padded
    frame (total_length shorter than the snap)."""
    tcp = make_tcp_packet(
        "10.0.0.1", "93.184.216.34",
        TCPHeader(src_port=50000, dst_port=443, seq=7, flag_ack=True),
        payload=b"x" * 64, timestamp=1.0)
    syn = make_tcp_packet(
        "10.0.0.3", "93.184.216.34",
        TCPHeader(src_port=50002, dst_port=443, seq=0, flag_syn=True),
        timestamp=1.0)
    vlan = replace(tcp, eth=EthernetHeader(vlan_id=19))
    off443 = make_tcp_packet(
        "10.0.0.4", "93.184.216.34",
        TCPHeader(src_port=50003, dst_port=8080, seq=3, flag_ack=True),
        payload=b"z" * 32, timestamp=1.0)
    udp = make_udp_packet("10.0.0.2", "93.184.216.34", 50001, 443,
                          payload=b"y" * 48)
    return [tcp.to_bytes(), syn.to_bytes(), vlan.to_bytes(),
            off443.to_bytes(), udp.to_bytes(),
            tcp.to_bytes() + b"\x00" * 9]  # capture padding


_BASES = _base_frames()

# A frame is random garbage, a mutant of a valid frame, a truncation
# of one, or a valid frame verbatim — the mix that makes both accept
# and reject lanes dense in every drawn block.
_frame_strategy = st.one_of(
    st.binary(max_size=200),
    st.builds(
        lambda base, pos, val: (
            _BASES[base][:pos % len(_BASES[base])]
            + bytes([val])
            + _BASES[base][pos % len(_BASES[base]) + 1:]),
        st.integers(0, len(_BASES) - 1),
        st.integers(0, 10_000),
        st.integers(0, 255)),
    st.builds(lambda base, cut: _BASES[base][:cut % len(_BASES[base])],
              st.integers(0, len(_BASES) - 1),
              st.integers(0, 10_000)),
    st.sampled_from(_BASES),
)


def _block_of(frames: list[bytes]) -> FrameBlock:
    return FrameBlock.from_frames(
        (data, float(i)) for i, data in enumerate(frames))


class TestDecodeBlockOracleParity:
    @given(st.lists(_frame_strategy, max_size=24))
    @settings(max_examples=150)
    def test_validity_and_fields_match_per_frame_parse(self, frames):
        decoded = decode_block(_block_of(frames))
        assert len(decoded) == len(frames)
        for i, data in enumerate(frames):
            try:
                raw = RawPacket.parse(data, float(i))
            except CLEAN_ERRORS:
                assert not decoded.valid[i], (i, data.hex())
                continue
            assert decoded.valid[i], (i, data.hex())
            assert int(decoded.protocol[i]) == raw.protocol
            assert int(decoded.src_port[i]) == raw.src_port
            assert int(decoded.dst_port[i]) == raw.dst_port
            assert int(decoded.ttl[i]) == raw.ttl
            assert int(decoded.payload_len[i]) == raw.payload_len
            vlan = int(decoded.vlan_id[i])
            assert (None if vlan < 0 else vlan) == raw.vlan_id
            key, src, dst = decoded.make_key(i)
            assert key == raw.canonical_key_tuple
            assert (src, dst) == (raw.src_ip, raw.dst_ip)
            assert bool(decoded.https[i]) == (
                raw.src_port == 443 or raw.dst_port == 443)
            packet = decoded.promote(i)
            assert bool(decoded.syn_noack[i]) == bool(
                packet.tcp is not None and packet.tcp.flag_syn
                and not packet.tcp.flag_ack)

    def test_zero_and_extreme_length_frames(self):
        frames = [b"", b"\x00", b"\x00" * 13, b"\x00" * 14,
                  b"\xff" * 65535, _BASES[0], _BASES[0] + b"\x00" * 4096]
        decoded = decode_block(_block_of(frames))
        for i, data in enumerate(frames):
            try:
                RawPacket.parse(data, float(i))
                expect = True
            except CLEAN_ERRORS:
                expect = False
            assert bool(decoded.valid[i]) == expect, i
        assert decoded.invalid_count == 5
        assert decoded.first_invalid() == 0

    def test_empty_block_decodes(self):
        decoded = decode_block(_block_of([]))
        assert len(decoded) == 0
        assert decoded.valid_count == 0
        assert decoded.https_indices.size == 0


class TestPackedWireFormat:
    @given(st.lists(_frame_strategy, max_size=16),
           st.integers(min_value=64, max_value=2048))
    @settings(max_examples=80)
    def test_pack_roundtrip_preserves_frames(self, frames, max_bytes):
        block = _block_of(frames)
        out = []
        for chunk in block.pack_chunks(max_bytes=max_bytes):
            sub = FrameBlock.unpack(chunk)
            out.extend((sub.frame_bytes(i), float(sub.timestamps[i]))
                       for i in range(len(sub)))
        assert out == [(data, float(i))
                       for i, data in enumerate(frames)]

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60)
    def test_truncated_packed_block_always_raises(self, cut):
        packed = next(iter(_block_of(_BASES).pack_chunks()))
        with pytest.raises(ParseError):
            FrameBlock.unpack(packed[:cut % len(packed)])

    @given(st.binary(max_size=300))
    @settings(max_examples=150)
    def test_arbitrary_bytes_unpack_cleanly_or_decode(self, data):
        """Garbage either fails with ParseError at unpack or yields a
        block whose decode never crashes (corrupt offset tables are
        clamped and masked invalid, not chased out of bounds)."""
        try:
            block = FrameBlock.unpack(data)
        except CLEAN_ERRORS:
            return
        decoded = decode_block(block)
        assert len(decoded) == len(block)

    @given(st.lists(_frame_strategy, max_size=16),
           st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=100)
    def test_mutated_packed_block_cleanly_splits(self, frames, pos, val):
        packed = bytearray(
            next(iter(_block_of(frames + [_BASES[0]]).pack_chunks())))
        packed[pos % len(packed)] = val
        try:
            decoded = decode_block(FrameBlock.unpack(bytes(packed)))
        except CLEAN_ERRORS:
            return
        assert decoded.valid_count + decoded.invalid_count == \
            len(decoded)


class TestBlockReaderBoundaries:
    @pytest.mark.parametrize("chunk_bytes,max_frames",
                             [(64, 4096), (257, 3), (1 << 20, 1),
                              (128, 7)])
    def test_records_straddling_read_chunks(self, tmp_path, chunk_bytes,
                                            max_frames):
        """A pcap record split across reader chunks must come out
        byte-identical, whatever the chunk/flush geometry — and decode
        identically to the one-big-block decode."""
        path = tmp_path / "straddle.pcap"
        frames = [(_BASES[i % len(_BASES)], 1.0 + i * 0.25)
                  for i in range(40)]
        frames.insert(7, (b"\xff" * 12 + b"\x08\x06" + b"\x00" * 28,
                          2.0))
        with PcapWriter(path) as writer:
            for data, timestamp in frames:
                writer.write_bytes(data, timestamp)
        streamed = []
        for block in PcapReader(path).blocks(max_frames=max_frames,
                                             chunk_bytes=chunk_bytes):
            assert len(block) <= max_frames
            decoded = decode_block(block)
            streamed.extend(
                (block.frame_bytes(i), float(block.timestamps[i]),
                 bool(decoded.valid[i]))
                for i in range(len(block)))
        whole = decode_block(_block_of([d for d, _ in frames]))
        assert [(d, t) for d, t, _ in streamed] == frames
        assert [v for _, _, v in streamed] == \
            [bool(whole.valid[i]) for i in range(len(frames))]


class TestQuicMutantsThroughBulkIngest:
    """The QUIC mutant corpus, one more time — through the vectorized
    bulk path. Every mutant datagram rides a well-formed UDP/443 frame,
    so decode_block accepts them all; rejection happens at handshake
    parse inside the engine and must match the eager path exactly."""

    def test_promotion_outcome_parity(self):
        corpus = TestQuicInitialMutations.CORPUS
        frames = []
        for i, (tag, datagram) in enumerate(corpus):
            frame = make_udp_packet(f"10.2.{i % 200}.2",
                                    "93.184.216.34", 41000 + i, 443,
                                    payload=datagram).to_bytes()
            frames.append((frame, float(i)))
        decoded = decode_block(FrameBlock.from_frames(frames))
        assert decoded.valid_count == len(corpus)
        assert decoded.https_indices.size == len(corpus)
        for i, (data, timestamp) in enumerate(frames):
            def outcome(packet):
                try:
                    record = parse_flow_handshake([packet])
                    return ("ok", record.transport, record.sni)
                except CLEAN_ERRORS as exc:
                    return ("rejected", type(exc).__name__)
            eager = outcome(Packet.from_bytes(data, timestamp))
            bulk = outcome(decoded.promote(i))
            assert eager == bulk, corpus[i][0]

    def test_pipeline_counters_parity(self, quic_fuzz_bank):
        eager = RealtimePipeline(quic_fuzz_bank)
        bulk = RealtimePipeline(quic_fuzz_bank)
        frames = []
        for i, (tag, datagram) in enumerate(
                TestQuicInitialMutations.CORPUS):
            frame = make_udp_packet(f"10.3.{i % 200}.2",
                                    "93.184.216.34", 42000 + i, 443,
                                    payload=datagram).to_bytes()
            frames.append((frame, float(i)))
            eager.process_packet(Packet.from_bytes(frame, float(i)))
        bulk.process_block(decode_block(FrameBlock.from_frames(frames)))
        eager.flush()
        bulk.flush()
        assert eager.counters == bulk.counters
