"""Tests for the sharded pipeline front-end.

The invariants a multi-core tap needs: a flow's packets always land on
one shard (both directions), the merged shard state equals the
unsharded pipeline's, and idle eviction operates per shard.
"""

from dataclasses import replace

import pytest

from repro.ml import RandomForestClassifier
from repro.pipeline import ClassifierBank, RealtimePipeline, ShardedPipeline
from repro.pipeline.sharded import _shard_of_tuple, shard_index
from repro.trafficgen import generate_lab_dataset


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(seed=21, scale=0.08)


@pytest.fixture(scope="module")
def bank(lab):
    return ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=8, max_depth=16, random_state=1),
    )


@pytest.fixture(scope="module")
def mixed_flows(lab):
    return list(lab)[::5][:150]


def _sorted_records(store):
    return sorted(store, key=lambda r: (str(r.key), r.start_time,
                                        r.bytes_down))


class TestShardPlacement:
    def test_same_flow_same_shard(self, mixed_flows):
        for flow in mixed_flows:
            shards = {_shard_of_tuple(p.canonical_key_tuple, 4)
                      for p in flow.packets}
            assert len(shards) == 1

    def test_direction_independent(self, mixed_flows):
        for flow in mixed_flows[:40]:
            key = flow.key
            assert shard_index(key, 8) == shard_index(key.reversed(), 8)

    def test_deterministic_across_calls(self, mixed_flows):
        placements = [shard_index(f.key, 4) for f in mixed_flows]
        assert placements == [shard_index(f.key, 4) for f in mixed_flows]

    def test_packet_and_flow_key_paths_agree(self, mixed_flows):
        for flow in mixed_flows[:40]:
            from_packet = _shard_of_tuple(
                flow.packets[0].canonical_key_tuple, 4)
            assert from_packet == shard_index(flow.key, 4)

    def test_canonical_tuple_pins_flowkey_canonical(self, mixed_flows):
        """The fast tuple path duplicates FlowKey.canonical()'s ordering
        rule; this pins the two implementations together so a change to
        one cannot silently split flows across shards."""
        from dataclasses import astuple

        for flow in mixed_flows[:40]:
            for packet in flow.packets:
                assert packet.canonical_key_tuple == \
                    astuple(packet.flow_key.canonical())

    def test_all_shards_used(self, mixed_flows):
        loads = [0] * 4
        for flow in mixed_flows:
            loads[shard_index(flow.key, 4)] += 1
        assert all(load > 0 for load in loads)

    def test_bad_shard_count_rejected(self, bank):
        with pytest.raises(ValueError):
            ShardedPipeline(bank, num_shards=0)


class TestShardedEquivalence:
    @pytest.mark.parametrize("num_shards,batch_size", [(4, 1), (4, 32),
                                                       (1, 16)])
    def test_merged_counters_equal_unsharded(self, bank, mixed_flows,
                                             num_shards, batch_size):
        packets = [p for f in mixed_flows for p in f.packets]
        unsharded = RealtimePipeline(bank, batch_size=batch_size)
        sharded = ShardedPipeline(bank, num_shards=num_shards,
                                  batch_size=batch_size)
        for packet in packets:
            unsharded.process_packet(packet)
            sharded.process_packet(packet)
        assert unsharded.flush() == sharded.flush()
        assert sharded.counters == unsharded.counters
        assert _sorted_records(sharded.telemetry) == \
            _sorted_records(unsharded.store)

    def test_flow_mode_merged_equals_unsharded(self, bank, mixed_flows):
        unsharded = RealtimePipeline(bank, batch_size=16)
        sharded = ShardedPipeline(bank, num_shards=4, batch_size=16)
        n_unsharded = unsharded.process_flows(mixed_flows)
        n_sharded = sharded.process_flows(mixed_flows)
        assert n_sharded == n_unsharded
        assert sharded.counters == unsharded.counters
        assert _sorted_records(sharded.store) == \
            _sorted_records(unsharded.store)

    def test_shard_loads_sum_to_total(self, bank, mixed_flows):
        sharded = ShardedPipeline(bank, num_shards=4)
        for flow in mixed_flows:
            for packet in flow.packets:
                sharded.process_packet(packet)
        assert sum(sharded.shard_loads) == sharded.counters.flows
        assert sharded.counters.flows == len(mixed_flows)


class TestShardedEviction:
    def test_flush_idle_evicts_per_shard(self, bank, mixed_flows):
        # Two flows on (ideally) different shards: one goes idle, one
        # stays fresh — only the idle one's shard may evict.
        old_flow, new_flow = mixed_flows[0], mixed_flows[1]
        sharded = ShardedPipeline(bank, num_shards=4)
        for packet in old_flow.packets:
            sharded.process_packet(packet)
        for packet in new_flow.packets:
            sharded.process_packet(replace(packet,
                                           timestamp=packet.timestamp
                                           + 1000.0))
        assert sharded.live_flows == 2
        emitted = sharded.flush_idle(now=1000.0, idle_timeout=120.0)
        assert emitted == 1
        assert sharded.live_flows == 1
        # The fresh flow survives on its own shard.
        fresh_shard = sharded.shards[sharded.shard_for(new_flow.key)]
        assert fresh_shard.live_flows == 1
        idle_shard = sharded.shards[sharded.shard_for(old_flow.key)]
        if idle_shard is not fresh_shard:
            assert idle_shard.live_flows == 0

    def test_flush_idle_drains_pending_first(self, bank, mixed_flows):
        sharded = ShardedPipeline(bank, num_shards=2, batch_size=10_000)
        for flow in mixed_flows[:20]:
            for packet in flow.packets:
                sharded.process_packet(packet)
        assert sharded.pending_classifications == 20
        emitted = sharded.flush_idle(now=1e9, idle_timeout=1.0)
        assert emitted == 20
        assert sharded.pending_classifications == 0
        assert sharded.live_flows == 0
