"""RawPacket unit behavior: the zero-copy view must expose the same
hot-path surface as the eager parse, reject the same malformed frames,
and promote losslessly."""

from dataclasses import replace

import pytest

from repro.errors import ParseError
from repro.net import (
    EthernetHeader,
    Packet,
    PcapReader,
    PcapWriter,
    RawPacket,
    TCPHeader,
    make_tcp_packet,
    make_udp_packet,
    mss_option,
    sack_permitted_option,
    window_scale_option,
)


def _tcp_packet(payload=b"abcdef", vlan_id=None):
    tcp = TCPHeader(src_port=51777, dst_port=443, seq=1000,
                    flag_syn=True,
                    options=(mss_option(1460), window_scale_option(8),
                             sack_permitted_option()))
    packet = make_tcp_packet("10.0.0.9", "142.250.70.78", tcp,
                             payload=payload, ttl=128, timestamp=3.25)
    if vlan_id is not None:
        packet = replace(packet, eth=EthernetHeader(vlan_id=vlan_id))
    return packet


class TestFieldEquality:
    @pytest.mark.parametrize("vlan_id", [None, 7, 4095])
    def test_tcp_fields_match_eager(self, vlan_id):
        packet = _tcp_packet(vlan_id=vlan_id)
        data = packet.to_bytes()
        raw = RawPacket.parse(data, 3.25)
        eager = Packet.from_bytes(data, 3.25)
        assert raw.is_tcp and not raw.is_udp
        assert (raw.src_port, raw.dst_port) == \
            (eager.src_port, eager.dst_port)
        assert raw.src_ip == eager.ip.src
        assert raw.dst_ip == eager.ip.dst
        assert raw.ttl == eager.ip.ttl == 128
        assert raw.vlan_id == eager.vlan_id == vlan_id
        assert raw.timestamp == eager.timestamp
        assert raw.canonical_key_tuple == eager.canonical_key_tuple
        assert raw.payload_len == len(eager.payload)
        assert bytes(raw.payload) == eager.payload

    def test_udp_fields_match_eager(self):
        packet = make_udp_packet("172.16.3.4", "8.8.4.4", 50001, 443,
                                 payload=b"\x01" * 48, timestamp=9.0)
        data = packet.to_bytes()
        raw = RawPacket.parse(data, 9.0)
        eager = Packet.from_bytes(data, 9.0)
        assert raw.is_udp and not raw.is_tcp
        assert raw.canonical_key_tuple == eager.canonical_key_tuple
        assert raw.payload_len == 48
        assert bytes(raw.payload) == eager.payload

    def test_ethernet_trailer_excluded_from_payload(self):
        """Padding after the IPv4 total length (common on short frames)
        must not leak into the payload — same bound as the eager path."""
        data = _tcp_packet(payload=b"xy").to_bytes() + b"\x00" * 6
        raw = RawPacket.parse(data)
        eager = Packet.from_bytes(data)
        assert bytes(raw.payload) == eager.payload == b"xy"

    def test_memoryview_input(self):
        packet = _tcp_packet()
        data = memoryview(packet.to_bytes())
        raw = RawPacket.parse(data, 3.25)
        assert raw.canonical_key_tuple == packet.canonical_key_tuple
        assert raw.promote() == Packet.from_bytes(bytes(data), 3.25)


class TestPromotion:
    @pytest.mark.parametrize("vlan_id", [None, 42])
    def test_promote_equals_eager(self, vlan_id):
        packet = _tcp_packet(vlan_id=vlan_id)
        data = packet.to_bytes()
        promoted = RawPacket.parse(data, 3.25).promote()
        assert promoted == Packet.from_bytes(data, 3.25)
        assert promoted.tcp.mss == 1460
        assert promoted.tcp.window_scale == 8
        assert promoted.tcp.sack_permitted


def _corruptions():
    base = _tcp_packet().to_bytes()
    udp = make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2,
                          payload=b"zz").to_bytes()
    yield "truncated-eth", base[:10]
    yield "bad-ethertype", base[:12] + b"\x86\xdd" + base[14:]
    yield "truncated-vlan-tag", base[:12] + b"\x81\x00\x00"
    yield "not-ipv4", base[:14] + bytes([0x65]) + base[15:]
    yield "bad-ihl", base[:14] + bytes([0x41]) + base[15:]
    yield "total-length-overruns", base[:16] + b"\xff\xff" + base[18:]
    yield "truncated-capture", base[:-4]
    yield "bad-protocol", base[:23] + bytes([99]) + base[24:]
    bad_doff = bytearray(base)
    bad_doff[14 + 20 + 12] = 0x10  # TCP data offset 4 (< 20 bytes)
    yield "bad-tcp-data-offset", bytes(bad_doff)
    bad_ulen = bytearray(udp)
    bad_ulen[14 + 20 + 4:14 + 20 + 6] = (4).to_bytes(2, "big")
    yield "bad-udp-length", bytes(bad_ulen)
    # Valid data offset but malformed option framing inside it: the
    # eager path rejects these while parsing options, so the raw path
    # must walk (and reject) them too.
    bad_optlen = bytearray(base)
    bad_optlen[14 + 20 + 20 + 1] = 0  # MSS option length byte -> 0
    yield "bad-tcp-option-length", bytes(bad_optlen)
    trunc_opt = bytearray(base)
    # Replace the EOL padding with NOP,NOP,<kind needing a length byte>
    # so the walk reaches a kind whose length octet is past the region.
    trunc_opt[14 + 20 + 20 + 9] = 1
    trunc_opt[14 + 20 + 20 + 10] = 1
    trunc_opt[14 + 20 + 20 + 11] = 8
    yield "truncated-tcp-option", bytes(trunc_opt)


class TestRejection:
    @pytest.mark.parametrize("name,data",
                             list(_corruptions()),
                             ids=[n for n, _ in _corruptions()])
    def test_raw_and_eager_reject_the_same_frames(self, name, data):
        with pytest.raises(ParseError):
            RawPacket.parse(data)
        with pytest.raises(ParseError):
            Packet.from_bytes(data)


class TestPcapStreaming:
    def test_raw_packets_match_eager_packets(self, tmp_path):
        path = tmp_path / "stream.pcap"
        packets = [_tcp_packet(payload=bytes([i]) * (i + 1))
                   for i in range(5)]
        packets.append(make_udp_packet("10.1.1.1", "10.2.2.2",
                                       4444, 443, payload=b"q" * 9,
                                       timestamp=1.0))
        with PcapWriter(path) as writer:
            for packet in packets:
                writer.write_packet(packet)
        with PcapReader(path) as reader:
            eager = list(reader.packets())
        with PcapReader(path) as reader:
            raws = list(reader.raw_packets())
        assert len(raws) == len(eager)
        for raw, pkt in zip(raws, eager):
            assert raw.timestamp == pkt.timestamp
            assert raw.canonical_key_tuple == pkt.canonical_key_tuple
            assert raw.promote() == pkt

    def test_frames_round_numbers(self, tmp_path):
        path = tmp_path / "frames.pcap"
        packet = _tcp_packet()
        with PcapWriter(path) as writer:
            writer.write_bytes(packet.to_bytes(), 123.456789)
        with PcapReader(path) as reader:
            (data, timestamp), = list(reader.frames())
        assert data == packet.to_bytes()
        assert timestamp == pytest.approx(123.456789, abs=1e-6)
