"""Tests for the util layer: seeded RNG determinism and forking."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util import SeededRNG


class TestSeededRNG:
    def test_same_seed_same_stream(self):
        a, b = SeededRNG(42), SeededRNG(42)
        assert [a.randint(0, 100) for _ in range(20)] == \
            [b.randint(0, 100) for _ in range(20)]
        assert a.token_bytes(16) == b.token_bytes(16)

    def test_fork_is_independent_of_parent_consumption(self):
        parent_a = SeededRNG(1)
        child_a = parent_a.fork("x")
        parent_b = SeededRNG(1)
        parent_b.randint(0, 10)  # consume parent entropy first
        child_b = parent_b.fork("x")
        assert child_a.randint(0, 10**9) == child_b.randint(0, 10**9)

    def test_fork_salts_differ(self):
        parent = SeededRNG(7)
        assert parent.fork("a").randint(0, 10**9) != \
            parent.fork("b").randint(0, 10**9)

    def test_weighted_choice_respects_zero_weight(self):
        rng = SeededRNG(3)
        picks = {rng.weighted_choice(["x", "y"], [1.0, 0.0])
                 for _ in range(50)}
        assert picks == {"x"}

    @given(st.integers(min_value=0, max_value=2**31))
    def test_bernoulli_bounds(self, seed):
        rng = SeededRNG(seed)
        assert rng.bernoulli(1.0) in (True, False)
        assert not SeededRNG(seed).bernoulli(0.0)

    def test_shuffle_deterministic(self):
        items_a = list(range(10))
        items_b = list(range(10))
        SeededRNG(5).shuffle(items_a)
        SeededRNG(5).shuffle(items_b)
        assert items_a == items_b
        assert sorted(items_a) == list(range(10))

    def test_sample_without_replacement(self):
        rng = SeededRNG(11)
        out = rng.sample(list(range(100)), 10)
        assert len(set(out)) == 10
