"""Service plane suite: live sources, the serve daemon, and its API.

The two load-bearing contracts:

* **Oracle equivalence** — a daemon tailing the golden capture must
  serve §5.2 report bytes identical to the batch ``report`` path over
  the same frames (after an explicit ``/api/flush`` drain), and an
  interrupted run resumed from its final checkpoint must end up
  indistinguishable from a never-interrupted one.
* **Operational truthfulness** — ``/healthz``/``/readyz`` must flip
  to 503 naming the failing component when ingest dies or workers go
  away, never report an all-clear they cannot back.
"""

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import time
import urllib.error
import urllib.request
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.errors import ConfigError, ParseError
from repro.pipeline import (
    RealtimePipeline,
    ingest_pcap,
    load_bank,
    save_bank,
)
from repro.pipeline.ingest import load_ingest_position
from repro.reporting import render_rollup_report
from repro.service import (
    AFPacketSource,
    MAX_FRAME_BYTES,
    PcapTailSource,
    SERVICE_POSITION_FILE,
    STREAM_FRAME_HEADER,
    ServicePosition,
    SocketStreamSource,
    build_daemon,
    load_service_position,
    open_source,
)
from repro.service.sources import FrameSource

from golden.make_golden_trace import train_bank

GOLDEN = Path(__file__).parent / "golden" / "golden.pcap"

_RECORD_HEADER = struct.Struct("<IIII")


def _split_records(pcap: bytes) -> tuple[bytes, list[bytes]]:
    """The golden capture's global header and each full record's
    bytes, so tests can grow a tailed file record by record."""
    header, records = pcap[:24], []
    offset = 24
    while offset < len(pcap):
        _, _, incl_len, _ = _RECORD_HEADER.unpack_from(pcap, offset)
        end = offset + 16 + incl_len
        records.append(pcap[offset:end])
        offset = end
    return header, records


# --- fixtures ---------------------------------------------------------------


@pytest.fixture(scope="module")
def bank_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("service-bank") / "bank"
    save_bank(train_bank(), path)
    return path


@pytest.fixture(scope="module")
def golden_parts():
    return _split_records(GOLDEN.read_bytes())


@pytest.fixture(scope="module")
def oracle(bank_dir):
    """The uninterrupted batch run every live test compares against."""
    pipeline = RealtimePipeline(load_bank(bank_dir), batch_size=8,
                                retention="rollup")
    result = ingest_pcap(pipeline, GOLDEN)
    pipeline.flush()
    return pipeline, result


def _get(port: int, path: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=10) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _post(port: int, path: str, body: bytes = b"") -> tuple[int, bytes]:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=body, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=10) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _wait_frames(port: int, target: int, timeout: float = 30.0) -> dict:
    """Poll /api/status until the daemon has ingested ``target``
    source records (frames + skipped)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = json.loads(_get(port, "/api/status")[1])
        if status["frames"] + status["skipped"] >= target:
            return status
        time.sleep(0.05)
    raise AssertionError(
        f"daemon never reached {target} records: {status}")


# --- source spec parsing ----------------------------------------------------


class TestOpenSource:
    def test_tail_spec(self):
        source = open_source("tail:/tmp/cap.pcap")
        assert isinstance(source, PcapTailSource)
        assert source.path == Path("/tmp/cap.pcap")

    def test_bare_path_means_tail(self, tmp_path):
        source = open_source(str(tmp_path / "cap.pcap"))
        assert isinstance(source, PcapTailSource)

    def test_socket_spec(self):
        source = open_source("socket:0.0.0.0:9999")
        assert isinstance(source, SocketStreamSource)
        assert source.host == "0.0.0.0"
        assert source.port == 9999

    def test_afpacket_spec(self):
        source = open_source("afpacket:eth0")
        assert isinstance(source, AFPacketSource)
        assert source.interface == "eth0"

    @pytest.mark.parametrize("spec", ["tail:", "afpacket:",
                                      "socket:9999", "socket:host:x"])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            open_source(spec)


# --- pcap tail --------------------------------------------------------------


class TestPcapTailSource:
    def test_follows_appends(self, tmp_path, golden_parts):
        header, records = golden_parts
        live = tmp_path / "live.pcap"
        live.write_bytes(header + b"".join(records[:3]))
        with PcapTailSource(live) as source:
            first = source.poll(max_frames=10, timeout=0.5)
            assert len(first) == 3
            with live.open("ab") as fh:
                fh.write(b"".join(records[3:5]))
            second = source.poll(max_frames=10, timeout=0.5)
            assert len(second) == 2
            assert source.consumed == 5
        # Frame bytes and timestamps come straight from the records.
        sec, usec, incl_len, _ = _RECORD_HEADER.unpack_from(records[0])
        assert first[0][0] == records[0][16:16 + incl_len]
        assert first[0][1] == pytest.approx(sec + usec / 1e6)

    def test_waits_for_file_to_appear(self, tmp_path, golden_parts):
        header, records = golden_parts
        live = tmp_path / "late.pcap"
        with PcapTailSource(live) as source:
            assert source.poll(max_frames=10, timeout=0.05) == []
            live.write_bytes(header + records[0])
            assert len(source.poll(max_frames=10, timeout=0.5)) == 1

    def test_partial_record_reread_when_completed(self, tmp_path,
                                                  golden_parts):
        header, records = golden_parts
        live = tmp_path / "partial.pcap"
        # Record header visible, body still in the writer's buffer.
        live.write_bytes(header + records[0][:20])
        with PcapTailSource(live) as source:
            assert source.poll(max_frames=10, timeout=0.05) == []
            with live.open("ab") as fh:
                fh.write(records[0][20:])
            frames = source.poll(max_frames=10, timeout=0.5)
            assert len(frames) == 1

    def test_rotation_drains_old_then_follows_new(self, tmp_path,
                                                  golden_parts):
        header, records = golden_parts
        live = tmp_path / "rotating.pcap"
        live.write_bytes(header + b"".join(records[:2]))
        with PcapTailSource(live) as source:
            assert len(source.poll(max_frames=10, timeout=0.5)) == 2
            # logrotate-style: move the old file aside, new inode at
            # the path.
            live.rename(tmp_path / "rotating.pcap.1")
            fresh = tmp_path / "fresh.pcap"
            fresh.write_bytes(header + b"".join(records[2:5]))
            fresh.rename(live)
            assert len(source.poll(max_frames=10, timeout=1.0)) == 3
            assert source.consumed == 5

    def test_truncation_rereads_from_top(self, tmp_path, golden_parts):
        header, records = golden_parts
        live = tmp_path / "truncated.pcap"
        live.write_bytes(header + b"".join(records[:4]))
        with PcapTailSource(live) as source:
            assert len(source.poll(max_frames=10, timeout=0.5)) == 4
            # A restarted capture truncates in place (same inode).
            live.write_bytes(header + records[0])
            assert len(source.poll(max_frames=10, timeout=1.0)) == 1

    def test_skip_fast_forwards(self, tmp_path, golden_parts):
        header, records = golden_parts
        live = tmp_path / "resume.pcap"
        live.write_bytes(header + b"".join(records[:5]))
        with PcapTailSource(live) as source:
            source.skip(3)
            assert source.consumed == 3
            frames = source.poll(max_frames=10, timeout=0.5)
            assert len(frames) == 2
            assert frames[0][0] == records[3][16:]

    def test_skip_past_eof_rejected(self, tmp_path, golden_parts):
        header, records = golden_parts
        live = tmp_path / "short.pcap"
        live.write_bytes(header + records[0])
        with PcapTailSource(live) as source:
            with pytest.raises(ConfigError, match="cannot resume"):
                source.skip(5)

    def test_bad_magic_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.pcap"
        bogus.write_bytes(b"\x00" * 24)
        with pytest.raises(ParseError, match="magic"):
            PcapTailSource(bogus).open()

    def test_corrupt_length_rejected(self, tmp_path, golden_parts):
        header, _ = golden_parts
        live = tmp_path / "corrupt.pcap"
        live.write_bytes(header + _RECORD_HEADER.pack(
            1, 0, MAX_FRAME_BYTES + 1, MAX_FRAME_BYTES + 1))
        with PcapTailSource(live) as source:
            with pytest.raises(ParseError, match="corrupt"):
                source.poll(max_frames=1, timeout=0.2)


# --- socket stream ----------------------------------------------------------


def _stream_frame(data: bytes, timestamp: float) -> bytes:
    return STREAM_FRAME_HEADER.pack(timestamp, len(data)) + data


class TestSocketStreamSource:
    def test_receives_length_prefixed_frames(self):
        with SocketStreamSource(port=0) as source:
            with socket.create_connection(("127.0.0.1",
                                           source.port)) as peer:
                peer.sendall(_stream_frame(b"\x01\x02\x03", 10.5)
                             + _stream_frame(b"\x04", 11.0))
                frames = source.poll(max_frames=10, timeout=2.0)
            assert frames == [(b"\x01\x02\x03", 10.5), (b"\x04", 11.0)]
            assert source.consumed == 2

    def test_survives_peer_disconnect(self):
        with SocketStreamSource(port=0) as source:
            with socket.create_connection(("127.0.0.1",
                                           source.port)) as peer:
                peer.sendall(_stream_frame(b"a", 1.0))
                assert len(source.poll(max_frames=10, timeout=2.0)) == 1
            # first forwarder gone; a second one takes over
            source.poll(max_frames=10, timeout=0.1)
            with socket.create_connection(("127.0.0.1",
                                           source.port)) as peer:
                peer.sendall(_stream_frame(b"b", 2.0))
                frames = source.poll(max_frames=10, timeout=2.0)
            assert frames == [(b"b", 2.0)]

    def test_oversize_length_drops_peer(self):
        with SocketStreamSource(port=0) as source:
            with socket.create_connection(("127.0.0.1",
                                           source.port)) as peer:
                peer.sendall(STREAM_FRAME_HEADER.pack(
                    1.0, MAX_FRAME_BYTES + 1))
                assert source.poll(max_frames=10, timeout=0.3) == []
                # protocol violation: the server hung up on us
                peer.settimeout(5.0)
                try:
                    assert peer.recv(1) == b""
                except OSError:
                    pass  # RST is also a hangup


# --- positions --------------------------------------------------------------


class TestServicePosition:
    def _write(self, tmp_path, **overrides):
        data = {"format_version": 1, "consumed": 7, "frames": 5,
                "skipped": 2, "clock": 12.5, "next_evict": 20.0}
        data.update(overrides)
        (tmp_path / SERVICE_POSITION_FILE).write_text(json.dumps(data))

    def test_roundtrip(self, tmp_path):
        position = ServicePosition(consumed=7, frames=5, skipped=2,
                                   clock=12.5, next_evict=20.0)
        (tmp_path / SERVICE_POSITION_FILE).write_text(position.to_json())
        loaded = load_service_position(tmp_path)
        assert (loaded.consumed, loaded.frames, loaded.skipped) == \
            (7, 5, 2)
        assert (loaded.clock, loaded.next_evict) == (12.5, 20.0)

    def test_absent_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="no service position"):
            load_service_position(tmp_path)

    def test_wrong_version_rejected(self, tmp_path):
        self._write(tmp_path, format_version=99)
        with pytest.raises(ConfigError, match="unsupported"):
            load_service_position(tmp_path)

    def test_null_clocks_pass(self, tmp_path):
        self._write(tmp_path, clock=None, next_evict=None)
        loaded = load_service_position(tmp_path)
        assert loaded.clock is None and loaded.next_evict is None

    @pytest.mark.parametrize("bad", ["12.5", True, [1.0]])
    def test_non_numeric_clock_rejected(self, tmp_path, bad):
        self._write(tmp_path, clock=bad)
        with pytest.raises(ConfigError, match="number or null"):
            load_service_position(tmp_path)


class TestIngestPositionCoercion:
    """Satellite: ``load_ingest_position`` must reject non-numeric
    clock fields at load time instead of letting them blow up frames
    later inside the tick arithmetic."""

    def _write(self, tmp_path, **overrides):
        data = {"format_version": 1, "consumed": 3, "frames": 3,
                "skipped": 0, "clock": 5.0, "next_evict": None,
                "next_checkpoint": 300.0}
        data.update(overrides)
        (tmp_path / "ingest.json").write_text(json.dumps(data))

    def test_numeric_and_null_pass(self, tmp_path):
        self._write(tmp_path, clock=5, next_evict=None)
        position = load_ingest_position(tmp_path)
        assert position.clock == 5.0
        assert isinstance(position.clock, float)
        assert position.next_evict is None
        assert position.next_checkpoint == 300.0

    @pytest.mark.parametrize("field", ["clock", "next_evict",
                                       "next_checkpoint"])
    @pytest.mark.parametrize("bad", ["12.5", True, {"t": 1}])
    def test_non_numeric_rejected(self, tmp_path, field, bad):
        self._write(tmp_path, **{field: bad})
        with pytest.raises(ConfigError, match="number or null"):
            load_ingest_position(tmp_path)


# --- daemon -----------------------------------------------------------------


class _ExplodingSource(FrameSource):
    """Feeds one unparseable frame, then dies — the supervisor must
    surface that as unhealthy ingest, not a silent thread death."""

    def __init__(self):
        super().__init__()
        self.polls = 0

    def poll(self, max_frames=256, timeout=0.2):
        self.polls += 1
        if self.polls == 1:
            return [(b"\x00" * 20, 1.0)]
        raise RuntimeError("feed exploded")

    def describe(self):
        return "exploding:"


class TestServeDaemon:
    def test_live_report_matches_batch_oracle(self, bank_dir, oracle,
                                              tmp_path, golden_parts):
        header, records = golden_parts
        oracle_pipeline, oracle_result = oracle
        live = tmp_path / "live.pcap"
        # Start with a prefix so the daemon exercises the tail path,
        # then grow the file under it.
        live.write_bytes(header + b"".join(records[:10]))
        daemon = build_daemon(bank_dir, open_source(f"tail:{live}"),
                              num_workers=2, retention="rollup",
                              batch_size=8)
        with daemon:
            port = daemon.server.port
            _wait_frames(port, 10)
            with live.open("ab") as fh:
                fh.write(b"".join(records[10:]))
            status = _wait_frames(port, len(records))
            assert status["frames"] == oracle_result.frames
            assert status["skipped"] == oracle_result.skipped
            assert _get(port, "/readyz")[0] == 200
            assert _get(port, "/healthz")[0] == 200
            # the explicit operator drain that makes the live cube
            # comparable to the batch run
            _post(port, "/api/flush")
            counters = json.loads(_get(port, "/api/counters")[1])
            expected = asdict(oracle_pipeline.counters)
            assert {k: counters[k] for k in expected} == expected
            status_code, body = _get(port, "/api/report?limit=6")
            assert status_code == 200
            assert body.decode() == render_rollup_report(
                oracle_pipeline.rollup, limit=6)
            rollup = json.loads(_get(port, "/api/rollup")[1])
            assert rollup["total_flows"] == \
                oracle_pipeline.rollup.total_flows
            drift = json.loads(_get(port, "/api/drift")[1])
            assert drift["monitor_attached"] is False
            assert _get(port, "/api/rollup?query=bogus")[0] == 400
            assert _get(port, "/api/nope")[0] == 404
            assert _post(port, "/api/checkpoint")[0] == 409

    def test_interrupted_resume_matches_uninterrupted(
            self, bank_dir, oracle, tmp_path, golden_parts):
        header, records = golden_parts
        oracle_pipeline, oracle_result = oracle
        live = tmp_path / "live.pcap"
        ck = tmp_path / "ck"
        half = len(records) // 2
        live.write_bytes(header + b"".join(records[:half]))
        # Run 1: ingest the first half, then drain gracefully — the
        # final checkpoint carries pipeline state + source position.
        daemon = build_daemon(bank_dir, open_source(f"tail:{live}"),
                              num_workers=2, retention="rollup",
                              batch_size=8, checkpoint_dir=ck,
                              checkpoint_interval=3600.0)
        with daemon:
            port = daemon.server.port
            _wait_frames(port, half)
        position = load_service_position(ck)
        assert position.consumed == half
        # Run 2: resume, then the capture grows the second half.
        daemon = build_daemon(bank_dir, open_source(f"tail:{live}"),
                              num_workers=2, retention="rollup",
                              batch_size=8, checkpoint_dir=ck,
                              checkpoint_interval=3600.0, resume=True)
        with daemon:
            port = daemon.server.port
            with live.open("ab") as fh:
                fh.write(b"".join(records[half:]))
            status = _wait_frames(port, len(records))
            assert status["frames"] == oracle_result.frames
            assert status["skipped"] == oracle_result.skipped
            _post(port, "/api/flush")
            report = _get(port, "/api/report?limit=6")[1]
            assert report.decode() == render_rollup_report(
                oracle_pipeline.rollup, limit=6)

    def test_resume_on_empty_checkpoint_dir_is_cold_start(
            self, bank_dir, tmp_path, golden_parts):
        header, records = golden_parts
        live = tmp_path / "live.pcap"
        live.write_bytes(header + b"".join(records[:2]))
        daemon = build_daemon(bank_dir, open_source(f"tail:{live}"),
                              num_workers=2, retention="rollup",
                              checkpoint_dir=tmp_path / "ck",
                              checkpoint_interval=3600.0, resume=True)
        with daemon:
            _wait_frames(daemon.server.port, 2)

    def test_resume_without_checkpoint_dir_rejected(self, bank_dir,
                                                    tmp_path):
        with pytest.raises(ConfigError, match="checkpoint directory"):
            build_daemon(bank_dir,
                         open_source(str(tmp_path / "x.pcap")),
                         resume=True)

    def test_ingest_failure_flips_health_to_503(self, bank_dir):
        daemon = build_daemon(bank_dir, _ExplodingSource(),
                              num_workers=2, retention="rollup")
        try:
            daemon.start()
            port = daemon.server.port
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                status_code, body = _get(port, "/healthz")
                if status_code == 503:
                    break
                time.sleep(0.05)
            assert status_code == 503
            payload = json.loads(body)
            assert payload["status"] == "unhealthy"
            failing = [c["component"] for c in payload["components"]
                       if not c["healthy"]]
            assert "ingest" in failing
            assert "feed exploded" in body.decode()
            ready, reason = daemon.ready()
            assert not ready
        finally:
            daemon.close()

    def test_dead_worker_flips_health_to_503(self, bank_dir, tmp_path,
                                             golden_parts):
        header, records = golden_parts
        live = tmp_path / "live.pcap"
        live.write_bytes(header + b"".join(records[:4]))
        daemon = build_daemon(bank_dir, open_source(f"tail:{live}"),
                              num_workers=2, retention="rollup")
        try:
            daemon.start()
            port = daemon.server.port
            _wait_frames(port, 4)
            victim = daemon._pipeline._workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                status_code, body = _get(port, "/healthz")
                if status_code == 503:
                    break
                time.sleep(0.05)
            assert status_code == 503
            assert b"workers dead" in body
            assert _get(port, "/readyz")[0] == 503
        finally:
            daemon._pipeline.terminate()
            daemon._ingest_error = "worker killed by test"
            daemon.close()

    def test_checkpoint_api_409_without_checkpoint_dir(self, bank_dir,
                                                       tmp_path,
                                                       golden_parts):
        header, records = golden_parts
        live = tmp_path / "live.pcap"
        live.write_bytes(header + records[0])
        daemon = build_daemon(bank_dir, open_source(f"tail:{live}"),
                              num_workers=2, retention="rollup")
        with daemon:
            port = daemon.server.port
            status_code, body = _post(port, "/api/checkpoint")
            assert status_code == 409
            assert b"disabled" in body
            # reload validation errors are 400s
            assert _post(port, "/api/reload", b"not json")[0] == 400
            assert _post(port, "/api/reload", b"{}")[0] == 400


# --- serve CLI lifecycle ----------------------------------------------------


class TestServeCommand:
    def test_sigterm_drains_with_final_checkpoint(self, bank_dir,
                                                  tmp_path,
                                                  golden_parts):
        header, records = golden_parts
        live = tmp_path / "live.pcap"
        ck = tmp_path / "ck"
        live.write_bytes(header + b"".join(records))
        env = dict(os.environ)
        src = Path(__file__).parent.parent / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}" \
            f"{env.get('PYTHONPATH', '')}"
        port_file = tmp_path / "events.jsonl"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--bank", str(bank_dir), "--source", f"tail:{live}",
             "--port", "0", "--workers", "2",
             "--checkpoint-dir", str(ck),
             "--event-log", str(port_file)],
            env=env, stderr=subprocess.PIPE, text=True)
        try:
            # The bound address is announced on stderr once the API
            # (and hence the daemon) is constructed.
            line = process.stderr.readline()
            assert "http://127.0.0.1:" in line, line
            port = int(line.split("http://127.0.0.1:")[1].split()[0])
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    if _get(port, "/readyz")[0] == 200:
                        status = json.loads(
                            _get(port, "/api/status")[1])
                        if status["frames"] + status["skipped"] >= \
                                len(records):
                            break
                except OSError:
                    pass
                time.sleep(0.1)
            else:
                raise AssertionError("daemon never drained the capture")
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=60) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        position = load_service_position(ck)
        assert position.consumed == len(records)
        events = [json.loads(line) for line in
                  port_file.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert "service_start" in kinds
        assert "checkpoint" in kinds
        assert kinds[-1] == "service_stop"
        assert events[-1]["clean"] is True
