"""Parallel runtime equivalence suite.

The in-process :class:`ShardedPipeline` is the oracle, the
multiprocess :class:`ParallelShardedPipeline` is the product. On the
same campus-mix capture the two must produce identical counters,
identical per-shard placement, identical predictions and telemetry
(same records, same order), and byte-identical rollup snapshots — for
worker counts 1, 2, and 4, through the raw-frame path, the eager
packet path, the flow-summary path, and a pcap replay with idle
eviction ticking.
"""

from itertools import zip_longest

import pytest

from repro.errors import ConfigError
from repro.fingerprints import Provider, Transport, UserPlatform, get_profile
from repro.ml import RandomForestClassifier
from repro.net import Packet, PcapWriter, TCPHeader, make_tcp_packet
from repro.pipeline import (
    ClassifierBank,
    ParallelShardedPipeline,
    ShardedPipeline,
    ingest_pcap,
    load_bank,
    save_bank,
)
from repro.telemetry import save_rollup
from repro.trafficgen import (
    CampusConfig,
    CampusWorkload,
    FlowBuildRequest,
    FlowFactory,
    generate_lab_dataset,
)
from repro.util import SeededRNG

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(seed=47, scale=0.05)


@pytest.fixture(scope="module")
def bank_dir(lab, tmp_path_factory):
    bank = ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=6, max_depth=14, random_state=1))
    path = tmp_path_factory.mktemp("bank") / "bank"
    save_bank(bank, path)
    return path


@pytest.fixture(scope="module")
def bank(bank_dir):
    # The oracle runs on the *persisted* bank too, so the suite
    # isolates the parallel machinery rather than the save/load
    # round trip (itself pinned elsewhere).
    return load_bank(bank_dir)


@pytest.fixture(scope="module")
def campus_frames(lab):
    """Video flows of every scenario interleaved with non-video TLS
    and non-443 bulk — the regime the tap lives in."""
    flows = list(lab)[::6][:60]
    factory = FlowFactory(SeededRNG(29))
    profile = get_profile(UserPlatform.from_label("windows_chrome"),
                          Provider.YOUTUBE)
    for i in range(8):
        flows.append(factory.build(FlowBuildRequest(
            platform_label="windows_chrome", provider=Provider.YOUTUBE,
            transport=Transport.TCP, profile=profile,
            sni=f"www.site{i}.example.net",
            client_ip=f"10.{40 + i}.3.7", start_time=12.0 + i)))
    rows = zip_longest(*[flow.packets for flow in flows])
    video = [p for row in rows for p in row if p is not None]
    rng = SeededRNG(83)
    mixed = []
    for i, packet in enumerate(video):
        mixed.append(packet)
        tcp = TCPHeader(src_port=40000 + i % 300,
                        dst_port=8080 if i % 2 else 443,
                        seq=i * 900, flag_ack=True)
        mixed.append(make_tcp_packet(
            f"10.{i % 90}.6.4", "93.184.216.34", tcp,
            payload=rng.token_bytes(300), timestamp=15.0 + i * 0.0007))
    return [(p.to_bytes(), p.timestamp) for p in mixed]


def _run_serial(bank, frames, num_shards, **kw):
    pipeline = ShardedPipeline(bank, num_shards=num_shards,
                               batch_size=8, **kw)
    pipeline.process_frames(frames)
    pipeline.flush()
    return pipeline


def _assert_equivalent(par, serial, tmp_path, tag):
    assert par.counters == serial.counters
    assert par.shard_loads == serial.shard_loads
    par_records = list(par.telemetry)
    serial_records = list(serial.telemetry)
    assert par_records == serial_records
    assert [(str(r.key), r.prediction) for r in par_records] == \
        [(str(r.key), r.prediction) for r in serial_records]
    if serial.shards[0].rollup is not None:
        save_rollup(par.rollup, tmp_path / f"{tag}-par")
        save_rollup(serial.rollup, tmp_path / f"{tag}-serial")
        assert (tmp_path / f"{tag}-par" / "rollup.json").read_bytes() \
            == (tmp_path / f"{tag}-serial" / "rollup.json").read_bytes()


class TestParallelVsSharded:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_raw_frames_identical(self, bank, bank_dir, campus_frames,
                                  tmp_path, workers):
        serial = _run_serial(bank, campus_frames, workers,
                             retention="both")
        with ParallelShardedPipeline(bank_dir, num_workers=workers,
                                     batch_size=8,
                                     retention="both") as par:
            par.process_frames(campus_frames)
            par.flush()
            _assert_equivalent(par, serial, tmp_path, f"w{workers}")
            assert par.counters.video_flows > 0
            assert par.counters.non_video_flows > 0

    def test_eager_packet_path_identical(self, bank, bank_dir,
                                         campus_frames):
        serial = ShardedPipeline(bank, num_shards=3, batch_size=4)
        for data, timestamp in campus_frames:
            serial.process_packet(Packet.from_bytes(data, timestamp))
        serial.flush()
        with ParallelShardedPipeline(bank_dir, num_workers=3,
                                     batch_size=4) as par:
            for data, timestamp in campus_frames:
                par.process_packet(Packet.from_bytes(data, timestamp))
            par.flush()
            assert par.counters == serial.counters
            assert list(par.telemetry) == list(serial.telemetry)

    def test_flow_summary_path_identical(self, bank, bank_dir):
        workload = CampusConfig(days=1, sessions_per_day=40, seed=5)
        serial = ShardedPipeline(bank, num_shards=2, batch_size=8)
        serial.process_flows(CampusWorkload(workload).flows())
        serial.flush()
        with ParallelShardedPipeline(bank_dir, num_workers=2,
                                     batch_size=8) as par:
            par.process_flows(CampusWorkload(workload).flows())
            par.flush()
            assert par.counters == serial.counters
            assert list(par.telemetry) == list(serial.telemetry)

    def test_pcap_replay_with_idle_eviction(self, bank, bank_dir,
                                            campus_frames, tmp_path):
        path = tmp_path / "campus.pcap"
        with PcapWriter(path) as writer:
            for data, timestamp in campus_frames:
                writer.write_bytes(data, timestamp)
        serial = ShardedPipeline(bank, num_shards=2, batch_size=8)
        res_serial = ingest_pcap(serial, path, idle_timeout=2.0)
        serial.flush()
        with ParallelShardedPipeline(bank_dir, num_workers=2,
                                     batch_size=8) as par:
            res_par = ingest_pcap(par, path, idle_timeout=2.0)
            par.flush()
            assert res_par == res_serial
            assert par.counters == serial.counters
            assert list(par.telemetry) == list(serial.telemetry)

    def test_live_flow_and_pending_views(self, bank, bank_dir,
                                         campus_frames):
        serial = _run_serial(bank, campus_frames, 2)
        with ParallelShardedPipeline(bank_dir, num_workers=2,
                                     batch_size=8) as par:
            par.process_frames(campus_frames)
            # Before any flush: the live flow table must look exactly
            # like the serial dispatcher's.
            serial_live = ShardedPipeline(bank, num_shards=2,
                                          batch_size=8)
            serial_live.process_frames(campus_frames)
            assert par.live_flows == serial_live.live_flows
            assert par.pending_classifications == \
                serial_live.pending_classifications
            par.flush()
            assert par.live_flows == 0
            assert par.counters == serial.counters


class TestParallelLifecycle:
    def test_missing_bank_dir_fails_in_parent(self, tmp_path):
        with pytest.raises(ConfigError):
            ParallelShardedPipeline(tmp_path / "nope")

    def test_rejects_bad_arguments(self, bank_dir):
        with pytest.raises(ValueError):
            ParallelShardedPipeline(bank_dir, num_workers=0)
        with pytest.raises(ValueError):
            ParallelShardedPipeline(bank_dir, num_workers=1,
                                    batch_size=0)
        with pytest.raises(ValueError):
            ParallelShardedPipeline(bank_dir, num_workers=1,
                                    retention="tape")

    def test_close_is_idempotent_and_final(self, bank_dir,
                                           campus_frames):
        par = ParallelShardedPipeline(bank_dir, num_workers=2)
        par.process_frames(campus_frames[:50])
        par.flush()
        counters = par.counters
        par.close()
        par.close()
        # Merged views survive close (final state is synced first) ...
        assert par.counters == counters
        # ... but feeding a closed pipeline is an error.
        with pytest.raises(RuntimeError):
            par.process_frames(campus_frames[:2])
        with pytest.raises(RuntimeError):
            par.flush()

    def test_dead_worker_fails_fast_on_ship(self, bank_dir,
                                            campus_frames):
        """A dead worker must surface at the next shipped chunk, not
        hours later at the final flush barrier (the parent would
        otherwise pickle the rest of the capture into a queue nobody
        drains)."""
        par = ParallelShardedPipeline(bank_dir, num_workers=1,
                                      chunk_items=16)
        par._workers[0].terminate()
        par._workers[0].join()
        with pytest.raises(RuntimeError, match="worker 0"):
            par.process_frames(campus_frames)
        par.terminate()

    def test_worker_error_surfaces_in_parent(self, bank_dir):
        par = ParallelShardedPipeline(bank_dir, num_workers=1)
        # A frame that parses in the parent but is then corrupted
        # cannot happen through the public surface; inject a poison
        # command instead to prove worker tracebacks propagate.
        par._cmd_queues[0].put(("flows", [object()]))
        with pytest.raises(RuntimeError, match="worker 0 failed"):
            par.flush()
        par.terminate()
