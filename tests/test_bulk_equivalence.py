"""Bulk-decode equivalence wall.

The vectorized bulk path (``decode_block`` + ``process_block``) is the
product; the eager per-record path is the oracle, exactly as in the PR 3
raw/eager contract. On a seeded campus mix — video flows, a
split-ClientHello flow, a VLAN-tagged slice, non-video bulk, foreign
ARP/IPv6 frames — every runtime flavor (serial, sharded, multiprocess
over both transports) must produce identical counters, identical
predictions in identical order, and byte-identical rollup snapshots
across all three ingest modes, including checkpointed and
killed-worker replay under the shared-memory transport.
"""

import hashlib
import os
import signal
from dataclasses import asdict, replace
from itertools import zip_longest

import pytest

from repro.errors import ParseError
from repro.ml import RandomForestClassifier
from repro.net import (
    EthernetHeader,
    PcapWriter,
    TCPHeader,
    make_tcp_packet,
)
from repro.fingerprints import Provider, Transport, UserPlatform, get_profile
from repro.pipeline import (
    ClassifierBank,
    ParallelShardedPipeline,
    RealtimePipeline,
    ShardedPipeline,
    ingest_pcap,
    save_bank,
)
from repro.telemetry import save_rollup
from repro.trafficgen import (
    FlowBuildRequest,
    FlowFactory,
    generate_lab_dataset,
)
from repro.util import SeededRNG


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(seed=37, scale=0.04)


@pytest.fixture(scope="module")
def bank(lab):
    return ClassifierBank.train(
        lab,
        model_factory=lambda: RandomForestClassifier(
            n_estimators=4, max_depth=12, random_state=1),
    )


@pytest.fixture(scope="module")
def bank_dir(bank, tmp_path_factory):
    path = tmp_path_factory.mktemp("bulk-eq-bank") / "bank"
    save_bank(bank, path)
    return path


def _split_hello(flow, pieces: int):
    """Split the flow's ClientHello segment into seq-adjacent TCP
    segments (the capture shape PR 3 fixed; bulk must keep it)."""
    packets = list(flow.packets)
    idx = next(i for i, p in enumerate(packets)
               if p.payload and p.payload[0] == 0x16)
    hello_pkt = packets[idx]
    payload = hello_pkt.payload
    size = max(1, len(payload) // pieces)
    parts = []
    offset = 0
    while offset < len(payload):
        end = len(payload) if len(parts) == pieces - 1 else offset + size
        chunk = payload[offset:end]
        parts.append(replace(
            hello_pkt,
            tcp=replace(hello_pkt.tcp, seq=hello_pkt.tcp.seq + offset),
            payload=chunk,
            timestamp=hello_pkt.timestamp + offset * 1e-6))
        offset += len(chunk)
    return packets[:idx] + parts + packets[idx + 1:]


@pytest.fixture(scope="module")
def campus_frames(lab):
    """The adversarial campus mix: interleaved video flows (one with a
    split ClientHello, a slice VLAN-tagged), a non-video TLS flow,
    non-443 bulk, and foreign link-layer frames."""
    flows = list(lab)[::6][:48]
    factory = FlowFactory(SeededRNG(41))
    profile = get_profile(UserPlatform.from_label("windows_chrome"),
                          Provider.YOUTUBE)
    split_flow = factory.build(FlowBuildRequest(
        platform_label="windows_chrome", provider=Provider.YOUTUBE,
        transport=Transport.TCP, profile=profile,
        sni="rr2---sn-bulk.googlevideo.com"))
    nonvideo = factory.build(FlowBuildRequest(
        platform_label="windows_chrome", provider=Provider.YOUTUBE,
        transport=Transport.TCP, profile=profile,
        sni="www.wikipedia.org"))
    rows = zip_longest(*([flow.packets for flow in flows]
                         + [_split_hello(split_flow, 3),
                            nonvideo.packets]))
    video = [p for row in rows for p in row if p is not None]
    tagged_keys = {flow.key.canonical() for flow in flows[::3]}
    video = [replace(p, eth=EthernetHeader(vlan_id=42))
             if p.flow_key.canonical() in tagged_keys else p
             for p in video]
    rng = SeededRNG(53)
    frames = []
    bulk_at = 0
    for i, packet in enumerate(video):
        frames.append((packet.to_bytes(), packet.timestamp))
        if i % 2 == 0:
            port = 8080 if bulk_at % 3 else 443
            tcp = TCPHeader(src_port=40000 + bulk_at % 300, dst_port=port,
                            seq=bulk_at, flag_ack=True)
            filler = make_tcp_packet(
                f"10.{bulk_at % 90}.7.2", "93.184.216.34", tcp,
                payload=rng.token_bytes(300),
                timestamp=packet.timestamp)
            frames.append((filler.to_bytes(), filler.timestamp))
            bulk_at += 1
    # Foreign frames a real tap carries: ARP and IPv6, skipped (not
    # errored) by every non-strict mode.
    arp = b"\xff" * 12 + b"\x08\x06" + b"\x00" * 28
    ipv6 = b"\x02" * 12 + b"\x86\xdd" + b"\x60" + b"\x00" * 47
    frames.insert(len(frames) // 2, (arp, frames[len(frames) // 2][1]))
    frames.append((ipv6, frames[-1][1] + 0.001))
    return frames


@pytest.fixture(scope="module")
def campus_pcap(campus_frames, tmp_path_factory):
    path = tmp_path_factory.mktemp("bulk-eq-pcap") / "campus.pcap"
    with PcapWriter(path) as writer:
        for data, timestamp in campus_frames:
            writer.write_bytes(data, timestamp)
    return path


def _rows(store):
    return [(str(r.key), r.provider.value, r.transport.value, r.role,
             r.start_time, r.duration, r.bytes_down, r.bytes_up,
             r.prediction) for r in store]


def _rollup_digest(cube, workdir, tag):
    target = workdir / f"rollup-{tag}"
    save_rollup(cube, target)
    return hashlib.sha256(
        (target / "rollup.json").read_bytes()).hexdigest()


@pytest.fixture(scope="module")
def eager_oracle(bank, campus_pcap, tmp_path_factory):
    """The oracle run: serial eager ingest, pinned once per module."""
    pipeline = RealtimePipeline(bank, batch_size=8, retention="both")
    result = ingest_pcap(pipeline, campus_pcap, mode="eager")
    pipeline.flush()
    workdir = tmp_path_factory.mktemp("bulk-eq-oracle")
    return {
        "result": result,
        "counters": asdict(pipeline.counters),
        "rows": _rows(pipeline.store),
        "rollup": _rollup_digest(pipeline.rollup, workdir, "oracle"),
    }


class TestSerialBulk:
    @pytest.mark.parametrize("mode", ("raw", "bulk"))
    def test_mode_matches_eager_oracle(self, bank, campus_pcap,
                                       eager_oracle, tmp_path, mode):
        pipeline = RealtimePipeline(bank, batch_size=8, retention="both")
        result = ingest_pcap(pipeline, campus_pcap, mode=mode)
        pipeline.flush()
        assert result == eager_oracle["result"]
        assert result.skipped == 2  # the ARP and IPv6 frames
        assert asdict(pipeline.counters) == eager_oracle["counters"]
        assert _rows(pipeline.store) == eager_oracle["rows"]
        assert _rollup_digest(pipeline.rollup, tmp_path, mode) == \
            eager_oracle["rollup"]

    def test_oracle_exercises_the_hard_shapes(self, eager_oracle):
        counters = eager_oracle["counters"]
        assert counters["video_flows"] > 0
        assert counters["non_video_flows"] > 0   # SNI-filtered TLS
        assert counters["incomplete"] > 0        # handshake-less bulk

    def test_strict_mode_rejects_foreign_frames_in_both_paths(
            self, bank, campus_pcap):
        for mode in ("raw", "bulk"):
            with pytest.raises(ParseError):
                ingest_pcap(RealtimePipeline(bank), campus_pcap,
                            mode=mode, strict=True)

    def test_bulk_checkpointed_replay_matches_uninterrupted(
            self, bank, campus_pcap, eager_oracle, tmp_path):
        """Checkpoint ticks land between bulk spans; the resumed run
        must still land on the oracle bytes."""
        victim = RealtimePipeline(bank, batch_size=8)
        ingest_pcap(victim, campus_pcap, mode="bulk",
                    checkpoint_dir=tmp_path / "ck",
                    checkpoint_interval=5.0)
        resumed = RealtimePipeline.restore(tmp_path / "ck", bank)
        ingest_pcap(resumed, campus_pcap, mode="bulk",
                    checkpoint_dir=tmp_path / "ck",
                    resume_dir=tmp_path / "ck",
                    checkpoint_interval=5.0)
        resumed.flush()
        assert asdict(resumed.counters) == eager_oracle["counters"]
        assert _rows(resumed.store) == eager_oracle["rows"]


class TestShardedBulk:
    @pytest.mark.parametrize("shards", (1, 2, 4))
    def test_bulk_equals_raw_per_shard_count(self, bank, campus_pcap,
                                             eager_oracle, tmp_path,
                                             shards):
        runs = {}
        for mode in ("raw", "bulk"):
            pipeline = ShardedPipeline(bank, num_shards=shards,
                                       batch_size=8, retention="both")
            ingest_pcap(pipeline, campus_pcap, mode=mode)
            pipeline.flush()
            runs[mode] = (asdict(pipeline.counters),
                          _rows(pipeline.telemetry),
                          _rollup_digest(pipeline.rollup, tmp_path,
                                         f"{mode}-{shards}"))
        assert runs["bulk"] == runs["raw"]
        assert runs["bulk"][0] == eager_oracle["counters"]
        assert sorted(map(repr, runs["bulk"][1])) == \
            sorted(map(repr, eager_oracle["rows"]))


class TestParallelBulk:
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_shm_bulk_matches_oracle(self, bank, bank_dir, campus_pcap,
                                     eager_oracle, tmp_path, workers):
        with ParallelShardedPipeline(bank_dir, num_workers=workers,
                                     batch_size=8, retention="both",
                                     transport="shm") as par:
            ingest_pcap(par, campus_pcap, mode="bulk")
            par.flush()
            par_counters = asdict(par.counters)
            par_rows = sorted(map(repr, _rows(par.telemetry)))
            par_digest = _rollup_digest(par.rollup, tmp_path, "par")
        assert par_counters == eager_oracle["counters"]
        assert par_rows == sorted(map(repr, eager_oracle["rows"]))
        # The multiprocess runtime must land on the same merged rollup
        # bytes as the serial dispatcher with the same shard count.
        serial = ShardedPipeline(bank, num_shards=workers, batch_size=8,
                                 retention="both")
        ingest_pcap(serial, campus_pcap, mode="raw")
        serial.flush()
        assert par_digest == _rollup_digest(serial.rollup, tmp_path,
                                            "serial")

    def test_queue_and_shm_transports_agree(self, bank_dir, campus_pcap,
                                            eager_oracle):
        states = {}
        for transport in ("queue", "shm"):
            with ParallelShardedPipeline(bank_dir, num_workers=2,
                                         batch_size=8,
                                         transport=transport) as par:
                ingest_pcap(par, campus_pcap, mode="bulk")
                par.flush()
                states[transport] = (asdict(par.counters),
                                     sorted(map(repr,
                                                _rows(par.telemetry))))
        assert states["queue"] == states["shm"]
        assert states["shm"][0] == eager_oracle["counters"]

    def test_killed_worker_replay_under_shm_bulk(self, bank_dir,
                                                 campus_pcap,
                                                 eager_oracle,
                                                 campus_frames,
                                                 tmp_path):
        """The PR 5 crash contract holds with frames riding the shm
        ring: SIGKILL a worker mid-capture, journal replay on the
        respawn must restore the oracle state exactly."""
        half_path = tmp_path / "half.pcap"
        half = len(campus_frames) // 2
        with PcapWriter(half_path) as writer:
            for data, timestamp in campus_frames[:half]:
                writer.write_bytes(data, timestamp)
        rest_path = tmp_path / "rest.pcap"
        with PcapWriter(rest_path) as writer:
            for data, timestamp in campus_frames[half:]:
                writer.write_bytes(data, timestamp)
        with ParallelShardedPipeline(bank_dir, num_workers=2,
                                     batch_size=8, transport="shm",
                                     checkpoint_dir=tmp_path / "jrn"
                                     ) as par:
            ingest_pcap(par, half_path, mode="bulk")
            victim = par._workers[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            ingest_pcap(par, rest_path, mode="bulk")
            par.flush()
            assert sum(par._restarts) >= 1
            assert asdict(par.counters) == eager_oracle["counters"]
            assert sorted(map(repr, _rows(par.telemetry))) == \
                sorted(map(repr, eager_oracle["rows"]))
