"""End-to-end smoke test for the ``repro serve`` daemon, CI-runnable.

Drives the real CLI entry point the way an operator (or a unit file)
would: train a small bank, start the daemon tailing a growing copy of
the committed golden capture, wait for readiness, query the §5.2
rollup API, then SIGTERM it and assert a clean drain — exit 0 and a
resumable checkpoint on disk — before resuming once to prove the
restart path boots.

Run:  PYTHONPATH=src python scripts/service_smoke.py
"""

import json
import os
import shutil
import signal
import struct
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GOLDEN = REPO / "tests" / "golden" / "golden.pcap"

_RECORD_HEADER = struct.Struct("<IIII")


def split_records(pcap: bytes) -> tuple[bytes, list[bytes]]:
    header, records = pcap[:24], []
    offset = 24
    while offset < len(pcap):
        _, _, incl_len, _ = _RECORD_HEADER.unpack_from(pcap, offset)
        end = offset + 16 + incl_len
        records.append(pcap[offset:end])
        offset = end
    return header, records


def get(port: int, path: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=10) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def cli(*args: str, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO / 'src'}{os.pathsep}" \
        f"{env.get('PYTHONPATH', '')}"
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args], env=env, **kwargs)


def serve(bank: Path, live: Path, ck: Path,
          resume: bool) -> tuple[subprocess.Popen, int]:
    args = ["serve", "--bank", str(bank), "--source", f"tail:{live}",
            "--port", "0", "--workers", "2",
            "--checkpoint-dir", str(ck)]
    if resume:
        args.append("--resume")
    process = cli(*args, stderr=subprocess.PIPE, text=True)
    line = process.stderr.readline()
    assert "http://127.0.0.1:" in line, f"no bind line: {line!r}"
    port = int(line.split("http://127.0.0.1:")[1].split()[0])
    return process, port


def wait_for(predicate, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        result = predicate()
        if result is not None:
            return result
        time.sleep(0.1)
    raise AssertionError(f"timed out waiting for {what}")


def drained(port: int, target: int):
    try:
        if get(port, "/readyz")[0] != 200:
            return None
        status = json.loads(get(port, "/api/status")[1])
    except OSError:
        return None
    done = status["frames"] + status["skipped"] >= target
    return status if done else None


def terminate(process: subprocess.Popen) -> int:
    process.send_signal(signal.SIGTERM)
    try:
        return process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)


def main() -> int:
    work = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    bank, live, ck = work / "bank", work / "live.pcap", work / "ck"
    print("[smoke] training a small bank ...")
    assert cli("train", "--out", str(bank), "--scale", "0.05",
               "--trees", "4", stdout=subprocess.DEVNULL).wait() == 0

    header, records = split_records(GOLDEN.read_bytes())
    half = len(records) // 2
    live.write_bytes(header + b"".join(records[:half]))

    print("[smoke] starting repro serve on a growing capture ...")
    process, port = serve(bank, live, ck, resume=False)
    try:
        wait_for(lambda: drained(port, half), 120, "first half")
        print("[smoke] ready; growing the capture ...")
        with live.open("ab") as fh:
            fh.write(b"".join(records[half:]))
        status = wait_for(lambda: drained(port, len(records)), 120,
                          "full capture")
        print(f"[smoke] ingested {status['frames']} frames "
              f"({status['skipped']} skipped)")
        code, body = get(port, "/api/rollup?query=sessions")
        assert code == 200, body
        assert json.loads(body)["format_version"] == 1
        assert get(port, "/api/report")[0] == 200
        assert get(port, "/healthz")[0] == 200
        print("[smoke] SIGTERM -> graceful drain ...")
    finally:
        exit_code = terminate(process)
    assert exit_code == 0, f"serve exited {exit_code}"
    assert (ck / "service.json").exists(), "no final checkpoint"
    consumed = json.loads((ck / "service.json").read_text())["consumed"]
    assert consumed == len(records), (consumed, len(records))

    print("[smoke] restarting with --resume ...")
    process, port = serve(bank, live, ck, resume=True)
    try:
        status = wait_for(lambda: drained(port, len(records)), 120,
                          "resumed daemon readiness")
        assert status["consumed"] == len(records), status
    finally:
        exit_code = terminate(process)
    assert exit_code == 0, f"resumed serve exited {exit_code}"

    shutil.rmtree(work, ignore_errors=True)
    print("[smoke] PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
